"""Versioned, fingerprinted scenario catalogs.

A :class:`ScenarioCatalog` is the JSON contract between "which bugs
exist in this study" and everything that consumes them: `repro
scenarios` evaluation, fleet populations
(:class:`~repro.fleet.population.PopulationSpec.catalog_json`), CI
goldens. The canonical JSON (key-sorted, compact) is the identity; its
sha256 fingerprints every derived artifact, exactly like population
fingerprints.

Determinism discipline mirrors ``PopulationSpec``: entry ``i`` draws its
parameters from ``random.Random(sha256("{seed}:{i}"))`` and its traces
from ``sha256("{seed}:{i}:{trace_kind}")``, so any process can
materialise any entry independently and byte-identically.

Instantiating a catalog registers its generated cases into the shared
buggy-app registry (:mod:`repro.apps.buggy.registry`) under
``scenario:<family>:<resource>:<index>`` keys, which is what lets
``DeviceSpec.buggy_apps`` carry scenario keys through the existing fleet
machinery unchanged.
"""

import hashlib
import json
import random

from repro.apps.buggy.registry import register_scenario_cases
from repro.apps.spec import CaseSpec
from repro.scenarios.families import FAMILIES, RESOURCE_DRIVERS
from repro.scenarios.traces import TRACE_KINDS, build_trace

#: Catalog JSON schema version; bump on any change to the spec fields
#: or the parameter-draw sequence (both alter generated behaviour).
CATALOG_SCHEMA_VERSION = 1


def scenario_key(family, resource, index):
    """The registry key for one generated case."""
    return "scenario:{}:{}:{:03d}".format(family, resource, index)


class ScenarioCatalog:
    """An ordered list of (family, resource, traces) scenario entries."""

    def __init__(self, name, seed, entries, schema=CATALOG_SCHEMA_VERSION):
        self.name = str(name)
        self.seed = int(seed)
        self.schema = int(schema)
        self.entries = tuple(
            self._normalise(i, entry) for i, entry in enumerate(entries))
        self._cases = None

    @staticmethod
    def _normalise(index, entry):
        family = entry.get("family")
        if family not in FAMILIES:
            raise ValueError(
                "entry {}: unknown family {!r} (known: {})".format(
                    index, family, ", ".join(sorted(FAMILIES))))
        resource = entry.get("resource")
        if resource not in RESOURCE_DRIVERS:
            raise ValueError(
                "entry {}: unknown resource {!r} (known: {})".format(
                    index, resource, ", ".join(sorted(RESOURCE_DRIVERS))))
        if resource not in FAMILIES[family].supported:
            raise ValueError(
                "entry {}: family {!r} does not compose with resource "
                "{!r} (supported: {})".format(
                    index, family, resource,
                    ", ".join(FAMILIES[family].supported)))
        traces = tuple(entry.get("traces", ()))
        for kind in traces:
            if kind not in TRACE_KINDS:
                raise ValueError(
                    "entry {}: unknown trace kind {!r} (known: {})".format(
                        index, kind, ", ".join(TRACE_KINDS)))
        params = dict(entry.get("params", {}))
        for key, value in params.items():
            if not isinstance(value, (int, float)):
                raise ValueError(
                    "entry {}: param {!r} must be a number, got {!r}"
                    .format(index, key, value))
        normalised = {"family": family, "resource": resource,
                      "traces": list(traces)}
        if params:
            normalised["params"] = params
        return normalised

    # -- serialisation -----------------------------------------------------

    def to_jsonable(self):
        return {
            "kind": "scenario_catalog",
            "schema": self.schema,
            "name": self.name,
            "seed": self.seed,
            "entries": [dict(entry) for entry in self.entries],
        }

    def to_json(self):
        """Canonical JSON: key-sorted, compact -- the fingerprint input."""
        return json.dumps(self.to_jsonable(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_json(cls, text):
        data = json.loads(text)
        if data.get("kind") != "scenario_catalog":
            raise ValueError(
                "not a scenario catalog (kind={!r})".format(data.get("kind")))
        schema = data.get("schema")
        if schema != CATALOG_SCHEMA_VERSION:
            raise ValueError(
                "catalog schema {} not supported (this build reads "
                "schema {})".format(schema, CATALOG_SCHEMA_VERSION))
        return cls(name=data.get("name", ""), seed=data.get("seed", 0),
                   entries=data.get("entries", ()), schema=schema)

    @classmethod
    def from_file(cls, path):
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    def fingerprint(self):
        """sha256 of the canonical JSON -- the catalog's identity."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    # -- deterministic materialisation -------------------------------------

    def sub_seed(self, index, salt=""):
        """Per-entry sub-seed (``PopulationSpec`` discipline)."""
        token = "{}:{}{}".format(self.seed, index,
                                 ":" + salt if salt else "")
        digest = hashlib.sha256(token.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def entry_key(self, index):
        entry = self.entries[index]
        return scenario_key(entry["family"], entry["resource"], index)

    def entry_params(self, index):
        """Entry ``index``'s effective parameters (seeded + overrides)."""
        entry = self.entries[index]
        family = FAMILIES[entry["family"]]
        driver = RESOURCE_DRIVERS[entry["resource"]]
        rng = random.Random(self.sub_seed(index))
        params = family.sample_params(rng, driver)
        params.update(entry.get("params", {}))
        return params

    def entry_traces(self, index, day_s):
        """Entry ``index``'s environment traces for a ``day_s`` horizon."""
        entry = self.entries[index]
        return [
            build_trace(kind, self.sub_seed(index, salt=kind), day_s)
            for kind in entry["traces"]
        ]

    def instantiate(self):
        """Materialise every entry as a registered :class:`CaseSpec`.

        Idempotent per process; the cases land in the shared registry so
        plain ``resolve_case(key)`` works everywhere afterwards.
        """
        if self._cases is not None:
            return self._cases
        cases = []
        for index, entry in enumerate(self.entries):
            family = FAMILIES[entry["family"]]
            driver = RESOURCE_DRIVERS[entry["resource"]]
            key = self.entry_key(index)
            params = self.entry_params(index)
            case = CaseSpec(
                key=key,
                app_factory=_AppFactory(family, driver, key, params),
                category="scenario",
                resource=driver.resource,
                behavior=family.behavior(driver),
                description="{} x {} ({})".format(
                    entry["family"], entry["resource"], family.droidleaks),
                phone_kwargs=family.phone_kwargs(driver),
                servers=family.servers(),
            )
            cases.append(case)
        register_scenario_cases(cases, self.fingerprint())
        self._cases = cases
        return cases


class _AppFactory:
    """Picklable zero-arg factory binding one entry's app together."""

    def __init__(self, family, driver, key, params):
        self.family = family
        self.driver = driver
        self.key = key
        self.params = params

    def __call__(self):
        return self.family.build(self.key, self.driver, self.params)


def default_catalog(seed=2019, name="droidleaks-default"):
    """The standing study catalog: every supported family x resource.

    Trace assignment follows the defect: every entry gets a diurnal
    interaction pattern; network-dependent compositions get outage
    windows; leak-family GPS entries get weak-GPS episodes. Families
    that already run in a *stressed* ambient (weak-signal FAB probes)
    skip the weak-GPS trace -- its restore events would lift the
    ambient out of the stressed regime -- and so does the clean
    misleading-burst control.
    """
    entries = []
    for family_name, family in sorted(FAMILIES.items()):
        for resource in family.supported:
            traces = ["diurnal"]
            if (resource == "gps" and not family.stress_environment
                    and family_name != "misleading-burst"):
                traces.append("weak-gps")
            if family_name == "missed-release-exception" \
                    or resource == "wifi":
                traces.append("network-outage")
            entries.append({"family": family_name, "resource": resource,
                            "traces": traces})
    return ScenarioCatalog(name=name, seed=seed, entries=entries)
