"""Catalog evaluation: scenario-days across mitigations, quality scores.

`repro scenarios` answers three questions per bug family:

- **containment** -- did the mitigation cut the buggy app's power draw
  to a fraction of its vanilla draw (rate + Wilson 95% CI)?
- **cost** -- how much system energy was saved, and how much app
  utility (UI updates + data writes) survived, relative to vanilla?
- **classifier quality** -- for lease-capable mitigations, did the
  behaviour classifier flag exactly the misbehaving compositions
  (precision / recall / F1 with Wilson CIs)? The misleading-burst
  family exists to expose false positives here.

Each (entry, mitigation) day is a module-level :func:`scenario_day`
dispatched as a :class:`~repro.experiments.grid.FuncSpec`, so the grid
runner's process pools, supervision and content-addressed caching all
apply; aggregation folds the flat per-day scalars into per-family
:class:`~repro.fleet.stats.FleetStats`, the same mergeable accumulators
the fleet reports use. The report is canonical JSON (key-sorted,
compact, no timestamps) so determinism goldens can pin its sha256.
"""

import json

from repro.experiments.grid import (
    FuncSpec,
    GridRunner,
    resolve_mitigation_factory,
)
from repro.fleet.report import _metric_block
from repro.fleet.stats import FleetStats, wilson_interval
from repro.scenarios.catalog import ScenarioCatalog

#: Mitigations `repro scenarios` compares by default; vanilla is always
#: prepended as the containment/utility baseline.
DEFAULT_MITIGATIONS = ("leaseos", "doze", "defdroid")

#: A misbehaving scenario-day counts as *contained* when the mitigation
#: cut the buggy app's draw to at most this fraction of vanilla's.
#: The draw before the defect triggers is legitimate and identical in
#: both runs, so even a perfect post-defect revocation leaves a
#: sizeable residual -- halving the day's draw is the bar.
CONTAINMENT_FACTOR = 0.5

REPORT_KIND = "scenario_report"
REPORT_SCHEMA = 1

#: Metrics folded into per-family FleetStats (every one a flat scalar
#: out of :func:`scenario_day`).
_DAY_METRICS = (
    "system_power_mw",
    "buggy_power_mw",
    "battery_life_h",
    "disruptions",
    "utility_events",
)


def scenario_day(catalog_json, entry_index, mitigation, minutes=15.0,
                 seed=7):
    """Run one catalog entry for one simulated day under one mitigation.

    Module-level with scalar kwargs so it travels as a ``FuncSpec``;
    the worker re-materialises the catalog from its canonical JSON
    (registering its cases as a side effect) and returns flat JSON
    scalars only -- the phone and event heap die here.
    """
    from repro.scenarios.traces import merged_session_windows, user_script
    from repro.sim.summary import day_summary

    catalog = ScenarioCatalog.from_json(catalog_json)
    case = catalog.instantiate()[entry_index]
    entry = catalog.entries[entry_index]
    factory = resolve_mitigation_factory(mitigation)
    phone = case.build_phone(mitigation=factory() if factory else None,
                             seed=seed)
    app = phone.install(case.make_app())
    day_s = minutes * 60.0
    traces = catalog.entry_traces(entry_index, day_s)
    for trace in traces:
        trace.apply(phone)
    phone.sim.spawn(
        user_script(phone, [app.uid],
                    merged_session_windows(traces, day_s)),
        name="scenario.user")
    mark = phone.energy_mark()
    phone.run_for(minutes=minutes)

    summary = day_summary(phone, mark, buggy_uids=[app.uid])
    capable = phone.lease_manager is not None
    summary.update({
        "entry_index": entry_index,
        "family": entry["family"],
        "resource": entry["resource"],
        "mitigation": mitigation,
        "should_flag": 1 if case.behavior.is_misbehavior else 0,
        # One scenario app per day, so "no false negatives" == flagged.
        "flagged": 1 if capable and summary["fn_apps"] == 0 else 0,
        "classifier_capable": 1 if capable else 0,
        "utility_events": len(app.ui_update_times)
        + len(app.data_write_times),
    })
    return summary


def _specs(catalog_json, entry_count, mitigations, minutes, seed):
    specs, labels = [], []
    for mitigation in mitigations:
        for index in range(entry_count):
            specs.append(FuncSpec.make(
                scenario_day, catalog_json=catalog_json,
                entry_index=index, mitigation=mitigation,
                minutes=float(minutes), seed=int(seed)))
            labels.append("scenario:{}:{:03d}".format(mitigation, index))
    return specs, labels


def evaluate_catalog(catalog, mitigations=DEFAULT_MITIGATIONS,
                     minutes=15.0, seed=7, runner=None):
    """Run every catalog entry under vanilla + ``mitigations``.

    Returns the scenario report dict; serialise it with
    :func:`report_json` for the canonical artifact.
    """
    if runner is None:
        runner = GridRunner()
    names = ["vanilla"]
    for name in mitigations:
        resolve_mitigation_factory(name)  # fail fast on typos
        if name != "vanilla" and name not in names:
            names.append(name)
    catalog_json = catalog.to_json()
    count = len(catalog.entries)
    specs, labels = _specs(catalog_json, count, names, minutes, seed)
    rows = runner.run(specs, labels=labels)
    by_mitigation = {
        name: rows[i * count:(i + 1) * count]
        for i, name in enumerate(names)
    }
    return build_report(catalog, by_mitigation, minutes=minutes, seed=seed)


def _rate_block(successes, trials):
    rate, lo, hi = wilson_interval(successes, trials)
    return {"successes": successes, "trials": trials,
            "rate": round(rate, 6), "lo": round(lo, 6),
            "hi": round(hi, 6)}


def _classifier_block(rows):
    """Confusion counts + Wilson'd precision/recall/F1, or None."""
    rows = [r for r in rows if r and r["classifier_capable"]]
    if not rows:
        return None
    tp = sum(1 for r in rows if r["should_flag"] and r["flagged"])
    fp = sum(1 for r in rows if not r["should_flag"] and r["flagged"])
    fn = sum(1 for r in rows if r["should_flag"] and not r["flagged"])
    tn = sum(1 for r in rows if not r["should_flag"] and not r["flagged"])
    precision = _rate_block(tp, tp + fp)
    recall = _rate_block(tp, tp + fn)
    p, r = precision["rate"], recall["rate"]
    f1 = round(2.0 * p * r / (p + r), 6) if (p + r) > 0 else 0.0
    return {"tp": tp, "fp": fp, "fn": fn, "tn": tn,
            "precision": precision, "recall": recall, "f1": f1}


def _family_block(rows, vanilla_rows, is_vanilla):
    """Score one (mitigation, family) cell from its day rows.

    ``rows`` and ``vanilla_rows`` are parallel (same entries, same
    order); ``None`` rows (quarantined jobs) drop the pair.
    """
    stats = FleetStats()
    contained = trials = 0
    savings, utility_ratios = [], []
    for row, vanilla in zip(rows, vanilla_rows):
        if row is None or vanilla is None:
            stats.count("missing_days")
            continue
        for metric in _DAY_METRICS:
            stats.observe(metric, row[metric])
        stats.count("days")
        stats.count("flagged", row["flagged"])
        if row["should_flag"]:
            trials += 1
            if row["buggy_power_mw"] \
                    <= CONTAINMENT_FACTOR * vanilla["buggy_power_mw"]:
                contained += 1
        if vanilla["system_power_mw"] > 0:
            savings.append(100.0 * (1.0 - row["system_power_mw"]
                                    / vanilla["system_power_mw"]))
        if vanilla["utility_events"] > 0:
            utility_ratios.append(row["utility_events"]
                                  / vanilla["utility_events"])
    block = {
        "metrics": {metric: _metric_block(summary)
                    for metric, summary in sorted(stats.metrics.items())},
        "counters": dict(sorted(stats.counters.items())),
    }
    classifier = _classifier_block(rows)
    if classifier is not None:
        block["classifier"] = classifier
    if not is_vanilla:
        block["containment"] = _rate_block(contained, trials)
        if savings:
            block["energy_saved_pct"] = round(
                sum(savings) / len(savings), 6)
        if utility_ratios:
            block["utility_preserved"] = round(
                sum(utility_ratios) / len(utility_ratios), 6)
    return block


def build_report(catalog, by_mitigation, minutes, seed):
    """Aggregate per-day rows into the canonical scenario report."""
    vanilla_rows = by_mitigation["vanilla"]
    families = sorted({entry["family"] for entry in catalog.entries})
    indices_by_family = {
        family: [i for i, entry in enumerate(catalog.entries)
                 if entry["family"] == family]
        for family in families
    }
    mitigations = {}
    for name, rows in sorted(by_mitigation.items()):
        is_vanilla = name == "vanilla"
        per_family = {}
        for family in families:
            indices = indices_by_family[family]
            per_family[family] = _family_block(
                [rows[i] for i in indices],
                [vanilla_rows[i] for i in indices],
                is_vanilla)
        mitigations[name] = {
            "families": per_family,
            "overall": _family_block(rows, vanilla_rows, is_vanilla),
        }
    return {
        "kind": REPORT_KIND,
        "schema": REPORT_SCHEMA,
        "catalog": {
            "name": catalog.name,
            "seed": catalog.seed,
            "fingerprint": catalog.fingerprint(),
            "entries": len(catalog.entries),
            "families": families,
        },
        "minutes": float(minutes),
        "seed": int(seed),
        "mitigations": mitigations,
    }


def report_json(report):
    """Canonical JSON (key-sorted, compact) -- the golden-able artifact."""
    return json.dumps(report, sort_keys=True, separators=(",", ":"))


def render_report(report):
    """Human-readable per-family table for the CLI."""
    from repro.experiments.runner import format_table

    lines = [
        "scenario catalog {!r} (fingerprint {}..., {} entries)".format(
            report["catalog"]["name"],
            report["catalog"]["fingerprint"][:12],
            report["catalog"]["entries"]),
    ]
    headers = ["mitigation", "family", "contained", "energy-saved%",
               "utility-kept", "precision", "recall", "f1"]
    rows = []
    for name, data in sorted(report["mitigations"].items()):
        for family, block in sorted(data["families"].items()):
            containment = block.get("containment")
            classifier = block.get("classifier")

            def _ci(rate_block):
                if not rate_block["trials"]:
                    return "-"
                return "{:.2f} [{:.2f},{:.2f}]".format(
                    rate_block["rate"], rate_block["lo"], rate_block["hi"])

            rows.append([
                name,
                family,
                _ci(containment) if containment else "-",
                "{:.1f}".format(block["energy_saved_pct"])
                if "energy_saved_pct" in block else "-",
                "{:.2f}".format(block["utility_preserved"])
                if "utility_preserved" in block else "-",
                _ci(classifier["precision"]) if classifier else "-",
                _ci(classifier["recall"]) if classifier else "-",
                "{:.2f}".format(classifier["f1"])
                if classifier and classifier["recall"]["trials"] else "-",
            ])
    lines.append(format_table(headers, rows))
    return "\n".join(lines)
