"""Parametric leak-bug family templates (DroidLeaks taxonomy).

DroidLeaks (PAPERS.md) catalogs how real Android resource leaks happen:
a release skipped on an exception path, a reference overwritten or
dropped before release, a release that runs too early (and a retry storm
after it) or too late (the consumer is long gone), and API-misuse loops
that churn acquire/use cycles for work nobody consumes. Each of those
*families* is independent of which resource is leaked -- so this module
factors the two axes apart:

- a :class:`ResourceDriver` per resource kind (wakelock / CPU / screen /
  GPS / sensor / Wi-Fi / audio / Bluetooth) encapsulating acquire,
  release, *abandon* (the consumer vanishes without a release) and
  genuine attributable *use* through the real :mod:`repro.droid` APIs;
- a :class:`Family` per bug pattern, a small generator loop written once
  against the driver interface.

``family x driver`` composition yields an app class compatible with the
Table 5 cases (:class:`~repro.apps.spec.CaseSpec` app factories); the
catalog (:mod:`repro.scenarios.catalog`) instantiates the grid with
seeded parameters. The sixth family, ``misleading-burst``, is *clean*
(bursty-but-useful) and exists to probe classifier false positives.

Ground-truth behaviour labels per composition are pinned by
``Family.behavior`` and verified empirically by the mutation tests in
``tests/scenarios/test_families.py``: every leak family must actually
trip the LeaseOS classifier, the misleading family must not.
"""

from repro.core.behavior import BehaviorType
from repro.core.utility import UtilityCounter
from repro.droid.app import App
from repro.droid.exceptions import NetworkException
from repro.droid.power_manager import WakeLockLevel
from repro.droid.resources import ResourceType
from repro.droid.sensors import SensorType

#: Server every scenario phone registers in ERROR mode: the exception
#: path trigger for the missed-release family (K9Mail idiom).
FLAKY_SERVER = "scenario-flaky"
#: Healthy server for transfer-style use (Wi-Fi lock utilization).
SYNC_SERVER = "scenario-sync"


# ---------------------------------------------------------------------------
# Resource drivers


class ResourceDriver:
    """Acquire/use/release one resource kind through the real APIs.

    ``fresh_record`` distinguishes listener-style APIs (every acquire
    creates a new kernel record: GPS, sensor, Bluetooth, audio) from
    lock-style APIs (one app-side descriptor is re-acquired, so hold
    time accrues on a single lease: wakelocks, Wi-Fi locks).
    """

    kind = None
    resource = None
    fresh_record = True

    def acquire(self, app):
        """Acquire (reusing the app's cached descriptor when lock-style)."""
        raise NotImplementedError

    def acquire_fresh(self, app):
        """Acquire a brand-new kernel record (lost-reference stacking)."""
        return self.acquire(app)

    def release(self, app, handle):
        raise NotImplementedError

    def abandon(self, app, handle):
        """The consumer vanishes without a release.

        For listener-style resources this marks the bound Activity dead
        (``set_consumer_active(False)``), which is what drives their
        utilization metric to zero; lock-style resources have no
        consumer signal -- the leak shows up as use simply stopping.
        """

    def use(self, app, handle, work_s):
        """Generator: ``work_s`` seconds of genuine, attributable use."""
        yield app.sleep(work_s)

    def ambient(self):
        """Phone kwargs for a healthy environment for this resource."""
        return {}

    def stressed(self):
        """Phone kwargs for the environment exposing ask-side bugs."""
        return self.ambient()


class WakelockDriver(ResourceDriver):
    kind = "wakelock"
    resource = ResourceType.WAKELOCK
    fresh_record = False
    level = WakeLockLevel.PARTIAL
    #: Fraction of the use window spent computing (wakelock utilization
    #: is CPU time over honoured time).
    duty = 0.5
    cores = 1.0

    def acquire(self, app):
        lock = app.scenario_handles.get(self.kind)
        if lock is None:
            lock = self._new_lock(app, "{}.lock".format(app.name))
            app.scenario_handles[self.kind] = lock
        lock.acquire()
        return lock

    def acquire_fresh(self, app):
        lock = self._new_lock(
            app, "{}.lock{}".format(app.name, len(app.leaked)))
        lock.acquire()
        return lock

    def _new_lock(self, app, name):
        return app.ctx.power.new_wakelock(app, name, level=self.level)

    def release(self, app, handle):
        handle.release()

    def use(self, app, handle, work_s):
        busy = self.duty * work_s
        yield from app.compute(busy, cores=self.cores)
        if work_s > busy:
            yield app.sleep(work_s - busy)


class CpuDriver(WakelockDriver):
    """A partial wakelock backing sustained multi-core computation."""

    kind = "cpu"
    duty = 1.0
    cores = 2.0


class ScreenDriver(WakelockDriver):
    kind = "screen"
    resource = ResourceType.SCREEN
    level = WakeLockLevel.SCREEN_BRIGHT

    def use(self, app, handle, work_s):
        # Screen utilization is interaction/UI-update credit; refresh
        # live content every ~4 s (credit is 5 s per update).
        ticks = max(1, int(work_s / 4.0))
        for __ in range(ticks):
            app.post_ui_update()
            yield app.sleep(work_s / ticks)


class GpsDriver(ResourceDriver):
    kind = "gps"
    resource = ResourceType.GPS

    def acquire(self, app):
        return app.ctx.location.request_location_updates(
            app, app.scenario_feed,
            interval=app.params.get("interval_s", 8.0))

    def release(self, app, handle):
        handle.remove()

    def abandon(self, app, handle):
        handle.set_consumer_active(False)

    def ambient(self):
        # Stationary user, clear sky: fixes lock fast, holding without a
        # consumer is pure waste.
        return {"gps_quality": 0.95, "movement_mps": 0.0}

    def stressed(self):
        # Deep-indoors signal: searching dominates, asks rarely succeed
        # -- the environment that exposes FAB (BetterWeather idiom).
        return {"gps_quality": 0.12, "movement_mps": 0.0}


class SensorDriver(ResourceDriver):
    kind = "sensor"
    resource = ResourceType.SENSOR

    def acquire(self, app):
        return app.ctx.sensors.register_listener(
            app, SensorType.ACCELEROMETER, app.scenario_feed,
            rate_hz=app.params.get("rate_hz", 5.0))

    def release(self, app, handle):
        handle.unregister()

    def abandon(self, app, handle):
        handle.set_consumer_active(False)


class WifiDriver(ResourceDriver):
    kind = "wifi"
    resource = ResourceType.WIFI
    fresh_record = False

    def acquire(self, app):
        lock = app.scenario_handles.get(self.kind)
        if lock is None:
            lock = app.ctx.wifi.new_lock(app, "{}.wifilock".format(app.name))
            app.scenario_handles[self.kind] = lock
        lock.acquire()
        return lock

    def acquire_fresh(self, app):
        lock = app.ctx.wifi.new_lock(
            app, "{}.wifilock{}".format(app.name, len(app.leaked)))
        lock.acquire()
        return lock

    def release(self, app, handle):
        handle.release()

    def use(self, app, handle, work_s):
        # Wi-Fi lock utilization is transfer duty while held.
        transfer = min(3.0, max(0.5, 0.2 * work_s))
        yield from app.http(SYNC_SERVER, payload_s=transfer)
        if work_s > transfer:
            yield app.sleep(work_s - transfer)


class AudioDriver(ResourceDriver):
    kind = "audio"
    resource = ResourceType.AUDIO

    def acquire(self, app):
        return app.ctx.audio.open_session(
            app, "{}.audio{}".format(app.name, len(app.leaked)))

    def release(self, app, handle):
        handle.close()

    def abandon(self, app, handle):
        # Playback stops (the player UI is gone) but the session stays
        # open -- the honoured record accrues with zero playback.
        handle.stop_playback()

    def use(self, app, handle, work_s):
        handle.start_playback()
        yield app.sleep(work_s)
        handle.stop_playback()


class BluetoothDriver(ResourceDriver):
    kind = "bluetooth"
    resource = ResourceType.BLUETOOTH

    def acquire(self, app):
        return app.ctx.bluetooth.start_discovery(app, app.scenario_feed)

    def release(self, app, handle):
        handle.close()

    def abandon(self, app, handle):
        handle.set_consumer_active(False)


#: kind -> driver instance (drivers are stateless; per-app descriptors
#: are cached on the app).
RESOURCE_DRIVERS = {
    driver.kind: driver
    for driver in (
        WakelockDriver(), CpuDriver(), ScreenDriver(), GpsDriver(),
        SensorDriver(), WifiDriver(), AudioDriver(), BluetoothDriver(),
    )
}


# ---------------------------------------------------------------------------
# Scenario app base


class ScenarioApp(App):
    """Base for generated apps: one driver, seeded params, leak state."""

    category = "scenario"

    def __init__(self, key, driver, params):
        App.__init__(self, name=key)
        self.driver = driver
        self.params = dict(params)
        #: While True, delivered readings/fixes/results are persisted
        #: (``note_data_write``) -- the generic utility signal.
        self.consuming = True
        #: Lock-style descriptor cache (see ``ResourceDriver``).
        self.scenario_handles = {}
        #: Handles leaked so far (held/open with no live reference).
        self.leaked = []

    def scenario_feed(self, *args):
        """Listener for fixes / sensor readings / discovery results.

        While a live consumer exists, every delivery is persisted and
        surfaced (the generic utility signals); a leaked registration
        has ``consuming`` off and its deliveries vanish.
        """
        if self.consuming:
            self.note_data_write()
            self.post_ui_update()

    def on_touch(self):
        self.post_ui_update()


# ---------------------------------------------------------------------------
# Families


class Family:
    """One DroidLeaks bug pattern, composable with any supported driver."""

    name = None
    #: DroidLeaks defect category this family reproduces.
    droidleaks = None
    description = None
    #: Resource kinds this family composes with (catalog validation);
    #: compositions outside this set would not express the defect in the
    #: classifier's metrics (e.g. early release of a listener-style
    #: resource wastes nothing).
    supported = ()
    #: Families probing the ask side run in the driver's stressed
    #: environment (weak GPS) instead of the ambient one.
    stress_environment = False
    app_cls = None

    def sample_params(self, rng, driver):
        """Draw this family's parameters from the entry's seeded rng.

        Every draw is rounded so catalog fingerprints stay readable and
        platform-stable; the draw *sequence* is part of the catalog's
        determinism contract (tests/scenarios goldens).
        """
        params = self._sample(rng)
        if driver.kind == "gps":
            params["interval_s"] = round(rng.uniform(6.0, 12.0), 1)
        elif driver.kind == "sensor":
            params["rate_hz"] = round(rng.uniform(5.0, 10.0), 1)
        return params

    def _sample(self, rng):
        raise NotImplementedError

    def behavior(self, driver):
        """Ground-truth LeaseOS behaviour class for this composition."""
        raise NotImplementedError

    def phone_kwargs(self, driver):
        if self.stress_environment:
            return dict(driver.stressed())
        return dict(driver.ambient())

    def servers(self):
        return {FLAKY_SERVER: "error", SYNC_SERVER: "ok"}

    def build(self, key, driver, params):
        return self.app_cls(key, driver, params)


class MissedReleaseApp(ScenarioApp):
    """Sync loop whose release sits below a throwing network call."""

    def run(self):
        p = self.params
        while True:
            handle = self.driver.acquire(self)
            try:
                yield from self.driver.use(self, handle, p["use_s"])
                yield from self.http(FLAKY_SERVER, payload_s=0.2)
            except NetworkException as exc:
                # The early-exit path skips the release; the component
                # that consumed the resource errors out and dies.
                self.note_exception(exc)
                self.consuming = False
                self.driver.abandon(self, handle)
                self.leaked.append(handle)
                break
            self.driver.release(self, handle)
            yield self.sleep(p["period_s"])
        while True:
            yield self.sleep(600.0)


class MissedReleaseFamily(Family):
    name = "missed-release-exception"
    droidleaks = "missed release on exception path"
    description = ("release() sits after a network call that throws; the "
                   "catch block forgets it and the service goes quiescent "
                   "with the resource held")
    supported = ("wakelock", "cpu", "screen", "gps", "sensor", "wifi",
                 "audio", "bluetooth")
    app_cls = MissedReleaseApp

    def _sample(self, rng):
        return {
            "use_s": round(rng.uniform(6.0, 12.0), 1),
            "period_s": round(rng.uniform(30.0, 60.0), 1),
        }

    def behavior(self, driver):
        return BehaviorType.LHB


class LostReferenceApp(ScenarioApp):
    """Overwrites its only reference on every restart; holds pile up."""

    def run(self):
        p = self.params
        handle = None
        for __ in range(p["leak_cap"]):
            if handle is not None:
                # The component restarts: the field is overwritten, the
                # old consumer is destroyed, the old hold remains.
                self.driver.abandon(self, handle)
                self.leaked.append(handle)
            handle = self.driver.acquire_fresh(self)
            try:
                yield from self.driver.use(self, handle, p["use_s"])
            except NetworkException as exc:
                self.note_exception(exc)
            yield self.sleep(p["period_s"])
        # Final teardown has no reference left to release either.
        self.driver.abandon(self, handle)
        self.leaked.append(handle)
        self.consuming = False
        while True:
            yield self.sleep(600.0)


class LostReferenceFamily(Family):
    name = "lost-reference"
    droidleaks = "reference lost before release"
    description = ("every restart re-acquires into the same field, "
                   "orphaning the previous hold; teardown has nothing "
                   "left to release")
    supported = ("wakelock", "cpu", "screen", "gps", "sensor", "wifi",
                 "audio", "bluetooth")
    app_cls = LostReferenceApp

    def _sample(self, rng):
        return {
            "use_s": round(rng.uniform(4.0, 8.0), 1),
            "period_s": round(rng.uniform(20.0, 45.0), 1),
            "leak_cap": rng.randint(3, 6),
        }

    def behavior(self, driver):
        return BehaviorType.LHB


class EarlyReleaseApp(ScenarioApp):
    """Gives the resource up before the task finishes, then retries."""

    def run(self):
        p = self.params
        while True:
            handle = self.driver.acquire(self)
            # Waits a fixed beat instead of driving the task, concludes
            # the task failed, and releases long before completion...
            yield self.sleep(p["hold_s"])
            self.driver.release(self, handle)
            self.record_disruption(
                "{}: task aborted, resource released early".format(self.name))
            # ...then immediately retries the whole cycle.
            yield self.sleep(p["retry_s"])


class EarlyReleaseFamily(Family):
    name = "early-release"
    droidleaks = "released too early (retry storm)"
    description = ("holds for less time than the task needs, aborts, and "
                   "retries forever: idle holds for lock-style resources, "
                   "an ask storm for GPS under weak signal")
    # Listener-style resources with a live consumer waste nothing when
    # released early, so the family only composes where the churn shows:
    # idle lock holds, or GPS searching that never locks.
    supported = ("wakelock", "cpu", "screen", "gps", "wifi")
    stress_environment = True
    app_cls = EarlyReleaseApp

    def _sample(self, rng):
        # Holds must outlive the 5 s initial lease term or every cycle
        # ends in an unclassifiable partial term.
        return {
            "hold_s": round(rng.uniform(6.0, 14.0), 1),
            "retry_s": round(rng.uniform(2.0, 5.0), 1),
        }

    def behavior(self, driver):
        if driver.kind == "gps":
            return BehaviorType.FAB
        return BehaviorType.LHB


class LateReleaseApp(ScenarioApp):
    """Works honestly, then leaves the release to a teardown that never
    runs (onDestroy is not called when the user just navigates away)."""

    def on_start(self):
        self.scenario_handles["main"] = self.driver.acquire(self)

    def run(self):
        p = self.params
        handle = self.scenario_handles["main"]
        elapsed = 0.0
        while elapsed < p["work_s"]:
            try:
                yield from self.driver.use(self, handle, p["tick_s"])
            except NetworkException as exc:
                self.note_exception(exc)
                yield self.sleep(p["tick_s"])
            self.note_data_write()
            elapsed += p["tick_s"]
        # The user moves on; the consumer is gone, the hold is not.
        self.consuming = False
        self.driver.abandon(self, handle)
        self.leaked.append(handle)
        while True:
            yield self.sleep(600.0)


class LateReleaseFamily(Family):
    name = "late-release"
    droidleaks = "released too late / never on exit path"
    description = ("a genuinely useful session whose release lives in a "
                   "teardown hook that never fires; the consumer "
                   "disappears and the hold persists")
    supported = ("wakelock", "cpu", "screen", "gps", "sensor", "wifi",
                 "audio", "bluetooth")
    app_cls = LateReleaseApp

    def _sample(self, rng):
        # The useful phase runs only while the device is awake (the app
        # process freezes across suspensions), so it must fit inside the
        # day's interaction windows for the leak to begin in-horizon.
        return {
            "work_s": round(rng.uniform(45.0, 90.0), 1),
            "tick_s": round(rng.uniform(4.0, 8.0), 1),
        }

    def behavior(self, driver):
        return BehaviorType.LHB


class _DiscardedResultsCounter(UtilityCounter):
    """Fig. 6 custom counter: consumed results over produced results.

    The acquire-loop app *is* honest about its utility (TapAndTurn
    idiom) -- it just never has any: everything it polls is discarded,
    so the counter reports 0 and the generic neutral base cannot mask
    the misuse.
    """

    def get_score(self):
        return 0.0


class AcquireLoopApp(ScenarioApp):
    """API-misuse polling loop: churns acquire/use cycles for results
    nobody consumes."""

    def __init__(self, key, driver, params):
        ScenarioApp.__init__(self, key, driver, params)
        self.consuming = False  # results are computed and discarded

    def on_start(self):
        self.set_utility_counter(self.driver.resource,
                                 _DiscardedResultsCounter())

    def run(self):
        p = self.params
        while True:
            handle = self.driver.acquire(self)
            try:
                yield from self.driver.use(self, handle, p["work_s"])
            except NetworkException as exc:
                self.note_exception(exc)
            self.driver.release(self, handle)
            yield self.sleep(p["loop_s"])


class AcquireLoopFamily(Family):
    name = "acquire-loop"
    droidleaks = "API-misuse acquire/release loop"
    description = ("an aggressive polling loop re-acquires and works "
                   "every few seconds but discards the results: low "
                   "utility despite healthy utilization (LUB), an ask "
                   "storm for GPS under weak signal (FAB)")
    # Listener churn on sensor/audio/Bluetooth produces short-lived
    # normal-looking leases; the misuse only shows where work or asking
    # accrues: compute loops, transfer polling, GPS re-requests.
    supported = ("wakelock", "cpu", "gps", "wifi")
    stress_environment = True
    app_cls = AcquireLoopApp

    def _sample(self, rng):
        # Work spans the 5 s lease term so every poll cycle completes
        # at least one classifiable term.
        return {
            "work_s": round(rng.uniform(6.0, 10.0), 1),
            "loop_s": round(rng.uniform(4.0, 9.0), 1),
        }

    def behavior(self, driver):
        if driver.kind == "gps":
            return BehaviorType.FAB
        return BehaviorType.LUB


class MisleadingBurstApp(ScenarioApp):
    """Clean control: short useful bursts separated by long idles."""

    def run(self):
        p = self.params
        while True:
            handle = self.driver.acquire(self)
            try:
                yield from self.driver.use(self, handle, p["burst_s"])
            except NetworkException as exc:
                self.note_exception(exc)
            self.note_data_write()
            self.post_ui_update()
            self.driver.release(self, handle)
            yield self.sleep(p["idle_s"])


class MisleadingBurstFamily(Family):
    name = "misleading-burst"
    droidleaks = "no defect (false-positive probe)"
    description = ("acquires in short, genuinely useful bursts with long "
                   "idle gaps -- the duty-cycled-but-healthy pattern a "
                   "utilitarian classifier must not condemn")
    supported = ("wakelock", "cpu", "screen", "gps", "sensor", "wifi",
                 "audio", "bluetooth")
    app_cls = MisleadingBurstApp

    def _sample(self, rng):
        return {
            "burst_s": round(rng.uniform(10.0, 18.0), 1),
            "idle_s": round(rng.uniform(180.0, 360.0), 1),
        }

    def behavior(self, driver):
        return BehaviorType.NORMAL


#: name -> family instance, in taxonomy order.
FAMILIES = {
    family.name: family
    for family in (
        MissedReleaseFamily(), LostReferenceFamily(), EarlyReleaseFamily(),
        LateReleaseFamily(), AcquireLoopFamily(), MisleadingBurstFamily(),
    )
}
