"""Seeded environment traces layered on :mod:`repro.env`.

A scenario is an app *and* the world it runs in: DroidLeaks bugs fire on
exception paths (network outages), ask-side storms need weak GPS
episodes, and the classifier's false-positive behaviour depends on when
the user actually interacts. Each :class:`EnvTrace` is a deterministic,
JSON-serialisable event list built from a sub-seed (same discipline as
:class:`~repro.fleet.population.PopulationSpec`): build it twice from
the same seed and the bytes match (the determinism goldens assert this).

Three kinds:

- ``diurnal`` -- user-interaction session windows scaled into the
  simulated horizon (morning / midday / evening activity peaks);
- ``network-outage`` -- connectivity drop/restore windows via
  :meth:`~repro.env.environment.Environment.schedule_network_change`;
- ``weak-gps`` -- signal-quality dips via
  :meth:`~repro.env.environment.Environment.schedule_gps_quality`.

``apply`` schedules a trace onto a built phone; user windows are not
events (the fleet's user is a process, not the environment) and are
driven by :func:`user_script`.
"""

import random

TRACE_KINDS = ("diurnal", "network-outage", "weak-gps")

#: Activity peaks as fractions of the simulated horizon (a compressed
#: morning / midday / evening pattern).
_DIURNAL_PEAKS = (0.08, 0.45, 0.80)


class EnvTrace:
    """One deterministic environment trace.

    ``events`` is a tuple of scalar tuples -- ``("network", t_s,
    connected, kind)`` or ``("gps", t_s, quality)`` -- and
    ``session_windows`` a tuple of ``(start_s, duration_s,
    touch_interval_s)`` user-interaction windows. Both are plain data:
    fingerprintable, process-portable.
    """

    def __init__(self, kind, events=(), session_windows=()):
        self.kind = kind
        self.events = tuple(tuple(event) for event in events)
        self.session_windows = tuple(
            tuple(window) for window in session_windows)

    def to_jsonable(self):
        return {
            "kind": self.kind,
            "events": [list(event) for event in self.events],
            "sessions": [list(window) for window in self.session_windows],
        }

    def apply(self, phone):
        """Schedule this trace's environment events on ``phone``."""
        for event in self.events:
            tag = event[0]
            if tag == "network":
                phone.env.schedule_network_change(
                    event[1], bool(event[2]), event[3])
            elif tag == "gps":
                phone.env.schedule_gps_quality(event[1], event[2])
            else:
                raise ValueError("unknown trace event {!r}".format(tag))


def build_trace(kind, seed, day_s):
    """Build one trace kind deterministically from ``seed``.

    ``day_s`` is the simulated horizon the trace is scaled into; the
    given (kind, seed, day_s) triple always yields identical bytes.
    """
    rng = random.Random(seed)
    if kind == "diurnal":
        return _diurnal(rng, day_s)
    if kind == "network-outage":
        return _network_outage(rng, day_s)
    if kind == "weak-gps":
        return _weak_gps(rng, day_s)
    raise ValueError(
        "unknown trace kind {!r} (expected one of {})".format(
            kind, ", ".join(TRACE_KINDS)))


def _diurnal(rng, day_s):
    windows = []
    touch = round(rng.uniform(5.0, 20.0), 1)
    for peak in _DIURNAL_PEAKS:
        if rng.random() < 0.25:  # the user skips some peaks
            continue
        start = round(day_s * (peak + rng.uniform(-0.04, 0.04)), 1)
        duration = round(day_s * rng.uniform(0.06, 0.12), 1)
        windows.append((max(0.0, start), duration, touch))
    if not windows:  # never a fully absent user
        windows.append((round(0.1 * day_s, 1), round(0.1 * day_s, 1), touch))
    return EnvTrace("diurnal", session_windows=sorted(windows))


def _network_outage(rng, day_s):
    events = []
    for __ in range(rng.randint(1, 3)):
        start = round(rng.uniform(0.05, 0.8) * day_s, 1)
        duration = round(rng.uniform(0.05, 0.12) * day_s, 1)
        events.append(("network", start, 0, "wifi"))
        events.append(("network", round(start + duration, 1), 1, "wifi"))
    return EnvTrace("network-outage", events=sorted(events,
                                                    key=lambda e: e[1]))


def _weak_gps(rng, day_s):
    events = []
    for __ in range(rng.randint(1, 3)):
        start = round(rng.uniform(0.05, 0.8) * day_s, 1)
        duration = round(rng.uniform(0.08, 0.18) * day_s, 1)
        dip = round(rng.uniform(0.08, 0.25), 3)
        restore = round(rng.uniform(0.85, 0.97), 3)
        events.append(("gps", start, dip))
        events.append(("gps", round(start + duration, 1), restore))
    return EnvTrace("weak-gps", events=sorted(events, key=lambda e: e[1]))


def merged_session_windows(traces, day_s):
    """All user windows across ``traces``, or a canonical default.

    A scenario with no diurnal trace still needs *some* interaction
    (Doze exits, screen sessions); the default is one early session.
    """
    windows = []
    for trace in traces:
        windows.extend(trace.session_windows)
    if not windows:
        windows.append((round(0.05 * day_s, 1), round(0.15 * day_s, 1), 10.0))
    return sorted(windows)


def user_script(phone, uids, windows):
    """Generator driving ``phone.user`` through interaction ``windows``.

    Mirrors the fleet's scripted day (idle between active sessions);
    overlapping windows degrade to back-to-back sessions.
    """
    now = 0.0
    for start, duration, touch in windows:
        if start > now:
            yield from phone.user.idle_session(start - now)
            now = start
        yield from phone.user.active_session(
            uids, duration, touch_interval=touch)
        now += duration
    phone.screen_off()
