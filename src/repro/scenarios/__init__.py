"""Seeded, DroidLeaks-grounded scenario generation.

The paper evaluates LeaseOS on 20 hand-built apps (Table 5); DroidLeaks
(PAPERS.md) shows the underlying defects cluster into a small number of
*bug families* -- missed release on an exception path, lost references,
early/late release, API-misuse loops -- each of which composes with any
leasable resource kind. This package turns that observation into a
generator:

- :mod:`repro.scenarios.families` -- parametric family templates that
  compose with any resource driver into app classes on the
  :mod:`repro.droid` framework;
- :mod:`repro.scenarios.traces` -- seeded environment traces (diurnal
  interaction, network outages, weak-GPS episodes) layered on
  :mod:`repro.env`;
- :mod:`repro.scenarios.catalog` -- the versioned, sha256-fingerprinted
  :class:`~repro.scenarios.catalog.ScenarioCatalog` (JSON spec ->
  deterministic :class:`~repro.apps.spec.CaseSpec` instantiation);
- :mod:`repro.scenarios.evaluate` -- runs a catalog through the kernel
  across mitigations and scores per-family containment and classifier
  precision/recall/F1 (the `repro scenarios` CLI).
"""

from repro.scenarios.catalog import (  # noqa: F401
    CATALOG_SCHEMA_VERSION,
    ScenarioCatalog,
    default_catalog,
    scenario_key,
)
from repro.scenarios.families import FAMILIES, RESOURCE_DRIVERS  # noqa: F401

__all__ = [
    "CATALOG_SCHEMA_VERSION",
    "FAMILIES",
    "RESOURCE_DRIVERS",
    "ScenarioCatalog",
    "default_catalog",
    "scenario_key",
]
