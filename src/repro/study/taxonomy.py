"""Table 1: which misbehaviour types each resource class can exhibit.

✓ = can occur, ✗ = cannot, ✓* = occurs with a different semantic (for
listener-based resources, "holding without using" refers to use of the
*data*, not the physical resource -- §2.4).
"""

from repro.core.behavior import BehaviorType

#: Resource rows exactly as Table 1 groups them.
RESOURCE_GROUPS = (
    "CPU, Screen, Wi-Fi radio, Audio",
    "GPS",
    "Sensors, Bluetooth",
)

_CHECK = "yes"
_CHECK_STAR = "yes*"
_CROSS = "no"


def applicability_matrix():
    """The Table 1 matrix: group -> {behavior: yes / yes* / no}."""
    return {
        "CPU, Screen, Wi-Fi radio, Audio": {
            BehaviorType.FAB: _CROSS,
            BehaviorType.LHB: _CHECK,
            BehaviorType.LUB: _CHECK,
            BehaviorType.EUB: _CHECK,
            BehaviorType.NORMAL: _CHECK,
        },
        "GPS": {
            BehaviorType.FAB: _CHECK,
            BehaviorType.LHB: _CHECK_STAR,
            BehaviorType.LUB: _CHECK,
            BehaviorType.EUB: _CHECK,
            BehaviorType.NORMAL: _CHECK,
        },
        "Sensors, Bluetooth": {
            BehaviorType.FAB: _CROSS,
            BehaviorType.LHB: _CHECK_STAR,
            BehaviorType.LUB: _CHECK,
            BehaviorType.EUB: _CHECK,
            BehaviorType.NORMAL: _CHECK,
        },
    }


def can_exhibit(group, behavior):
    """True if ``behavior`` can occur for the resource ``group``."""
    return applicability_matrix()[group][behavior] != _CROSS
