"""Query and export helpers over the 109-case study dataset."""

import csv

from collections import Counter

from repro.study.cases import CASES


def cases_by_app(app_name, cases=None):
    cases = CASES if cases is None else cases
    return [c for c in cases if c.app == app_name]


def cases_by_source(source, cases=None):
    cases = CASES if cases is None else cases
    return [c for c in cases if c.source == source]


def cases_by_resource(resource, cases=None):
    cases = CASES if cases is None else cases
    return [c for c in cases if c.resource == resource]


def resource_distribution(cases=None):
    """How the misbehaviour cases spread across resource classes."""
    cases = CASES if cases is None else cases
    return dict(Counter(c.resource for c in cases))


def source_distribution(cases=None):
    cases = CASES if cases is None else cases
    return dict(Counter(c.source for c in cases))


def distinct_apps(cases=None):
    """The paper studied 109 cases across 81 popular apps."""
    cases = CASES if cases is None else cases
    return sorted({c.app for c in cases})


def export_csv(path, cases=None):
    """Write the dataset to CSV (one row per case)."""
    cases = CASES if cases is None else cases
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["case_id", "app", "source", "resource",
                         "behavior", "root_cause", "provenance", "title"])
        for case in cases:
            writer.writerow([
                case.case_id, case.app, case.source, case.resource,
                case.behavior.value if case.behavior else "n/a",
                case.root_cause.value, case.provenance, case.title,
            ])
    return path
