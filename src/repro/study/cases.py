"""The 109-case real-world energy-misbehaviour study (paper §2.5).

The paper studied 109 cases across 81 popular apps collected from GitHub,
Google Code and user forums, classifying each by misbehaviour type (FAB /
LHB / LUB / EUB / N-A) and root cause (bug / configuration / enhancement /
N-A). The raw list is unpublished, so this module reconstructs a dataset
whose **marginals match Table 2 exactly**:

    type   bug  config  enhancement  n/a   total
    FAB     10       1            1    0      12
    LHB     18       5            0    0      23
    LUB     23       4            1    0      28
    EUB      8      18            5    3      34
    N/A      0       0            0   12      12
                                      sum =  109

Entries the paper (or its bibliography) names carry
``provenance="paper-cited"``; the remainder are realistic placeholders
(``provenance="reconstructed"``) so the aggregation pipeline and its
tests run against a full-size dataset.
"""

import itertools

from dataclasses import dataclass
from enum import Enum

from repro.core.behavior import BehaviorType


class RootCause(Enum):
    BUG = "bug"
    CONFIGURATION = "configuration"
    ENHANCEMENT = "enhancement"
    UNKNOWN = "n/a"


@dataclass(frozen=True)
class StudyCase:
    case_id: int
    app: str
    source: str  # github / googlecode / xda / androidforums
    resource: str
    behavior: BehaviorType
    root_cause: RootCause
    title: str
    provenance: str  # "paper-cited" | "reconstructed"


#: (behavior, root_cause) -> target count, straight from Table 2.
TABLE2_TARGETS = {
    (BehaviorType.FAB, RootCause.BUG): 10,
    (BehaviorType.FAB, RootCause.CONFIGURATION): 1,
    (BehaviorType.FAB, RootCause.ENHANCEMENT): 1,
    (BehaviorType.LHB, RootCause.BUG): 18,
    (BehaviorType.LHB, RootCause.CONFIGURATION): 5,
    (BehaviorType.LUB, RootCause.BUG): 23,
    (BehaviorType.LUB, RootCause.CONFIGURATION): 4,
    (BehaviorType.LUB, RootCause.ENHANCEMENT): 1,
    (BehaviorType.EUB, RootCause.BUG): 8,
    (BehaviorType.EUB, RootCause.CONFIGURATION): 18,
    (BehaviorType.EUB, RootCause.ENHANCEMENT): 5,
    (BehaviorType.EUB, RootCause.UNKNOWN): 3,
    (None, RootCause.UNKNOWN): 12,  # behaviour N/A (closed-source etc.)
}

#: Cases the paper or its references identify directly.
_PAPER_CITED = [
    ("K-9 Mail", "github", "wakelock", BehaviorType.LUB, RootCause.BUG,
     "Retry loop without backoff drains battery on server failure"),
    ("Kontalk", "github", "wakelock", BehaviorType.LHB, RootCause.BUG,
     "Wakelock held from service create to destroy"),
    ("BetterWeather", "github", "gps", BehaviorType.FAB, RootCause.BUG,
     "High battery drain with no GPS lock"),
    ("Facebook", "androidforums", "wakelock", BehaviorType.LHB,
     RootCause.BUG, "Battery drain in background service"),
    ("Torch", "github", "wakelock", BehaviorType.LHB, RootCause.BUG,
     "Wakelock acquired even if already held, never released"),
    ("ServalMesh", "github", "wakelock", BehaviorType.LUB, RootCause.BUG,
     "No power saving when not connected to an access point"),
    ("TextSecure", "github", "wakelock", BehaviorType.LUB, RootCause.BUG,
     "Battery usage is high during reconnect storms"),
    ("ConnectBot", "googlecode", "screen", BehaviorType.LHB,
     RootCause.BUG, "Screen kept bright for abandoned session"),
    ("Standup Timer", "github", "screen", BehaviorType.LHB,
     RootCause.BUG, "Wakelock released only in onPause"),
    ("ConnectBot", "github", "wifi", BehaviorType.LHB, RootCause.BUG,
     "Wi-Fi locked even when active network is not Wi-Fi"),
    ("WHERE", "androidforums", "gps", BehaviorType.FAB, RootCause.BUG,
     "Repeated GPS requests under weak signal"),
    ("MozStumbler", "github", "gps", BehaviorType.LHB,
     RootCause.CONFIGURATION, "Interval-based periodic scanning"),
    ("OSMTracker", "github", "gps", BehaviorType.LHB, RootCause.BUG,
     "GPS listener leaked after tracking stops"),
    ("GPSLogger", "github", "gps", BehaviorType.LHB,
     RootCause.CONFIGURATION, "Location accuracy feature keeps GPS on"),
    ("BostonBusMap", "github", "gps", BehaviorType.LHB, RootCause.BUG,
     "Location polled after location manager turned off"),
    ("AIMSICD", "github", "gps", BehaviorType.LUB, RootCause.BUG,
     "Battery consumption way too high"),
    ("OpenScienceMap", "github", "gps", BehaviorType.LUB, RootCause.BUG,
     "GPS stays active after leaving map"),
    ("OpenGPSTracker", "googlecode", "gps", BehaviorType.LUB,
     RootCause.BUG, "Tracking keeps processing an unmoving position"),
    ("TapAndTurn", "github", "sensor", BehaviorType.LUB, RootCause.BUG,
     "Polls sensors even when the screen is off"),
    ("Riot", "github", "sensor", BehaviorType.LUB, RootCause.BUG,
     "Accelerometer used by Google Play build constantly"),
    ("Facebook iOS", "androidforums", "audio", BehaviorType.LHB,
     RootCause.BUG, "Audio session leak keeps app awake in background"),
]

#: Pools used to synthesize the remaining entries realistically.
_APP_POOL = [
    "Pandora", "Transdroid", "Flym", "Waze", "Telegram", "Signal",
    "Firefox", "Outlook", "Slack", "Strava", "Sygic", "HereMaps",
    "PocketCasts", "AntennaPod", "Tasker", "Nextcloud", "Syncthing",
    "OwnTracks", "Shazam", "SoundHound", "TuneIn", "Zello", "Skype",
    "Viber", "Line", "KakaoTalk", "ProtonMail", "FairEmail", "DAVx5",
    "Gadgetbridge", "HomeAssistant", "OctoApp", "Termux", "JuiceSSH",
    "VLC", "NewPipe", "Twitch", "Reddit", "Discord", "Matrix",
    "OsmAnd", "Komoot", "Runtastic", "Endomondo", "Polarsteps",
    "LocusMap", "CityMapper", "Moovit", "Transit", "WeatherPro",
    "AccuWeather", "WindyApp", "RainAlarm", "SatStat", "GPSTest",
    "WigleWifi", "OpenTracks", "Traccar", "uNav", "Organic Maps",
]

_SOURCES = ["github", "googlecode", "xda", "androidforums"]

_RESOURCE_BY_BEHAVIOR = {
    BehaviorType.FAB: ["gps"],
    BehaviorType.LHB: ["wakelock", "wakelock", "gps", "screen", "wifi",
                       "sensor"],
    BehaviorType.LUB: ["wakelock", "wakelock", "gps", "sensor", "audio"],
    BehaviorType.EUB: ["wakelock", "gps", "screen", "sensor", "wifi",
                       "audio"],
    None: ["wakelock", "gps", "sensor"],
}

_TITLE_BY_CAUSE = {
    RootCause.BUG: "battery drained by a defect in {} handling",
    RootCause.CONFIGURATION: "aggressive {} settings trade energy for "
                             "accuracy",
    RootCause.ENHANCEMENT: "missing {} batching optimization",
    RootCause.UNKNOWN: "abnormal drain reported; root cause undetermined "
                       "({} suspected)",
}


def _build_cases():
    counter = itertools.count(1)
    cases = []
    remaining = dict(TABLE2_TARGETS)

    for app, source, resource, behavior, cause, title in _PAPER_CITED:
        key = (behavior, cause)
        if remaining.get(key, 0) <= 0:
            raise AssertionError(
                "paper-cited case overflows Table 2 cell {}".format(key)
            )
        remaining[key] -= 1
        cases.append(StudyCase(next(counter), app, source, resource,
                               behavior, cause, title, "paper-cited"))

    app_cycle = itertools.cycle(_APP_POOL)
    source_cycle = itertools.cycle(_SOURCES)
    for (behavior, cause), count in sorted(
            remaining.items(),
            key=lambda kv: (kv[0][0].value if kv[0][0] else "zzz",
                            kv[0][1].value)):
        resources = itertools.cycle(_RESOURCE_BY_BEHAVIOR[behavior])
        for __ in range(count):
            resource = next(resources)
            cases.append(StudyCase(
                next(counter), next(app_cycle), next(source_cycle),
                resource, behavior, cause,
                _TITLE_BY_CAUSE[cause].format(resource), "reconstructed",
            ))
    return cases


CASES = _build_cases()


def table2_counts(cases=None):
    """Aggregate cases into the Table 2 layout.

    Returns ``{row_label: {"bug": n, "config": n, "enhance": n, "n/a": n,
    "total": n}}`` with rows FAB/LHB/LUB/EUB/N-A, in paper order.
    """
    cases = CASES if cases is None else cases
    rows = {}
    order = [BehaviorType.FAB, BehaviorType.LHB, BehaviorType.LUB,
             BehaviorType.EUB, None]
    labels = {BehaviorType.FAB: "FAB", BehaviorType.LHB: "LHB",
              BehaviorType.LUB: "LUB", BehaviorType.EUB: "EUB",
              None: "N/A"}
    for behavior in order:
        selected = [c for c in cases if c.behavior is behavior]
        rows[labels[behavior]] = {
            "bug": sum(1 for c in selected
                       if c.root_cause is RootCause.BUG),
            "config": sum(1 for c in selected
                          if c.root_cause is RootCause.CONFIGURATION),
            "enhance": sum(1 for c in selected
                           if c.root_cause is RootCause.ENHANCEMENT),
            "n/a": sum(1 for c in selected
                       if c.root_cause is RootCause.UNKNOWN),
            "total": len(selected),
        }
    return rows


def prevalence_findings(cases=None):
    """The two §2.5 findings, computed from the dataset.

    Returns (share of FAB+LHB+LUB among all cases, share of Bug root
    causes within FAB+LHB+LUB, share of non-Bug within EUB).
    """
    cases = CASES if cases is None else cases
    clear = [c for c in cases if c.behavior in
             (BehaviorType.FAB, BehaviorType.LHB, BehaviorType.LUB)]
    eub = [c for c in cases if c.behavior is BehaviorType.EUB]
    clear_share = len(clear) / len(cases)
    bug_share = sum(
        1 for c in clear if c.root_cause is RootCause.BUG
    ) / len(clear)
    eub_nonbug_share = sum(
        1 for c in eub if c.root_cause is not RootCause.BUG
    ) / len(eub)
    return clear_share, bug_share, eub_nonbug_share
