"""The §2 misbehaviour study: Table 1 taxonomy and the 109-case dataset.

The paper's raw case list is unpublished; :mod:`repro.study.cases`
encodes a *reconstructed* dataset whose marginals match Table 2 exactly
(see DESIGN.md substitution #5). Entries corresponding to cases the paper
names carry ``provenance="paper-cited"``.
"""

from repro.study.cases import CASES, RootCause, StudyCase, table2_counts
from repro.study.taxonomy import applicability_matrix

__all__ = [
    "CASES",
    "StudyCase",
    "RootCause",
    "table2_counts",
    "applicability_matrix",
]
