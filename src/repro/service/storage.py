"""Storage backends for the lease authority: the ``IStorage`` split.

The service (:mod:`repro.service.service`) is the orchestration layer;
everything persistent flows through one of these backends, mirroring
the ``ProxyManager``/``IStorage`` layering of SNIPPETS.md snippet 1:

- :class:`InMemoryStorage` -- records kept as plain dicts in a list.
  Zero overhead, no durability; the default for tests and throwaway
  simulations.
- :class:`JournalStorage` -- an append-only JSONL write-ahead journal
  plus periodic compacted snapshots in one directory. Every record is
  one line carrying its own crc32 (over the canonical record JSON) and
  a gapless ``seq``; writes are line-atomic and fsync-batched
  (:data:`FSYNC_BATCH` records per fsync, always on close/snapshot).

Journal record form (sort-keyed, compact)::

    {"crc":"1a2b3c4d","data":{...},"op":"acquire","seq":7,"t":42.5}

Snapshot form (``snapshot-<seq8>.json``, atomic tmp+rename)::

    {"schema":1,"seq":12,"state":{...canonical state...},"crc":"..."}

Recovery (:meth:`IStorage.load`) returns the newest *valid* snapshot,
the journal records strictly after it, and a :class:`RecoveryInfo`
describing exactly what was salvaged: a torn final line (a crash
mid-write) or a corrupt-crc record demote the run to *degraded* and
everything from the first bad record on is dropped -- a later valid
record can never leapfrog a bad one, because replay order is the
correctness contract.

Storage faults are injected here, at the write path, via the
``storage`` target of :class:`repro.resilience.hooks.HarnessFaults`
(``REPRO_HARNESS_FAULTS``): ``{"storage": {"crash": [7]}}`` exits the
process (the harness's stand-in for SIGKILL) right after record 7 is
durable, ``"torn"`` kills it mid-write leaving a partial line, and
``"corrupt"`` writes record N with a mangled crc and carries on --
silent bitrot for recovery to catch.
"""

import binascii
import json
import os
import tempfile

from dataclasses import dataclass

#: Environment variable arming journal persistence for simulations
#: (see :mod:`repro.service.wiring`): its value is the journal root.
ENV_JOURNAL = "REPRO_SERVICE_JOURNAL"

#: Bump on incompatible journal/snapshot changes.
JOURNAL_SCHEMA = 1

#: The journal file name inside a storage directory.
JOURNAL_NAME = "journal.jsonl"

#: Records per fsync on the append path; the tail inside one batch is
#: exactly what a power cut may tear, which the crash matrix exercises.
FSYNC_BATCH = 16

#: Default root for per-run service directories.
DEFAULT_SERVICE_ROOT = os.path.join("results", ".service")


class JournalRecoveryError(Exception):
    """The storage directory cannot support a recovery at all."""


@dataclass
class RecoveryInfo:
    """What one :meth:`IStorage.load` actually salvaged."""

    snapshot_seq: int = -1        # -1: no snapshot, replay from genesis
    records_total: int = 0        # journal lines seen (incl. skipped)
    records_replayed: int = 0     # records handed to the reducer
    records_dropped: int = 0      # bad tail: torn/corrupt/post-gap
    snapshots_invalid: int = 0    # snapshot files that failed their crc
    degraded: bool = False
    reason: str = ""              # "", "torn_tail", "corrupt_record", ...

    def as_dict(self):
        return {
            "snapshot_seq": self.snapshot_seq,
            "records_total": self.records_total,
            "records_replayed": self.records_replayed,
            "records_dropped": self.records_dropped,
            "snapshots_invalid": self.snapshots_invalid,
            "degraded": self.degraded,
            "reason": self.reason,
        }


# -- record encoding ----------------------------------------------------------

def record_body(seq, op, t, data):
    """The crc-covered part of a record, as canonical JSON text."""
    return json.dumps({"seq": seq, "op": op, "t": t, "data": data},
                      sort_keys=True, separators=(",", ":"))


def record_crc(seq, op, t, data):
    """crc32 of the canonical record body, as 8 hex digits."""
    return "{:08x}".format(
        binascii.crc32(record_body(seq, op, t, data).encode("utf-8"))
        & 0xFFFFFFFF)


def encode_record(seq, op, t, data, crc=None):
    """One journal line (no newline), crc filled in unless given."""
    return json.dumps(
        {"seq": seq, "op": op, "t": t, "data": data,
         "crc": crc if crc is not None else record_crc(seq, op, t, data)},
        sort_keys=True, separators=(",", ":"))


def decode_record(line):
    """Parse + crc-check one journal line; raises ValueError if bad."""
    record = json.loads(line)
    if not isinstance(record, dict):
        raise ValueError("record is not an object")
    for field in ("seq", "op", "t", "data", "crc"):
        if field not in record:
            raise ValueError("record missing field {!r}".format(field))
    expected = record_crc(record["seq"], record["op"], record["t"],
                          record["data"])
    if record["crc"] != expected:
        raise ValueError("crc mismatch: {} != {}".format(
            record["crc"], expected))
    return record


# -- the interface ------------------------------------------------------------

class IStorage:
    """What the service requires of a backend (snippet-1 style)."""

    def append(self, seq, op, t, data):
        """Durably log one op *before* it is applied (write-ahead)."""
        raise NotImplementedError

    def snapshot(self, state_canonical):
        """Persist a compacted snapshot of the full canonical state."""
        raise NotImplementedError

    def load(self):
        """``(snapshot_state_or_None, records, RecoveryInfo)``."""
        raise NotImplementedError

    def flush(self):
        """Make everything appended so far durable."""

    def close(self):
        """Release resources; the directory/records stay recoverable."""

    def description(self):
        return type(self).__name__


class InMemoryStorage(IStorage):
    """Records in a list, snapshot in a dict: tests and defaults."""

    def __init__(self):
        self.records = []
        self._snapshot = None

    def append(self, seq, op, t, data):
        self.records.append({"seq": seq, "op": op, "t": t,
                             "data": data})

    def snapshot(self, state_canonical):
        self._snapshot = json.loads(json.dumps(state_canonical))

    def load(self):
        snap_seq = -1 if self._snapshot is None \
            else self._snapshot["op_seq"]
        records = [dict(record) for record in self.records
                   if record["seq"] >= snap_seq]
        info = RecoveryInfo(snapshot_seq=snap_seq,
                            records_total=len(self.records),
                            records_replayed=len(records))
        snapshot = None if self._snapshot is None \
            else json.loads(json.dumps(self._snapshot))
        return snapshot, records, info


class JournalStorage(IStorage):
    """Append-only JSONL journal + snapshots in one directory."""

    def __init__(self, directory, fsync_batch=FSYNC_BATCH, faults=None):
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.fsync_batch = max(int(fsync_batch), 1)
        if faults is None:
            from repro.resilience.hooks import HarnessFaults

            faults = HarnessFaults.from_env()
        self.faults = faults
        self.path = os.path.join(directory, JOURNAL_NAME)
        self._handle = None
        self._unsynced = 0
        self.appended = 0
        #: Records the last :meth:`compact` kept in the rewritten
        #: journal (those at/after the snapshot seq; normally 0).
        self.compact_kept = 0

    def description(self):
        return "JournalStorage({})".format(self.directory)

    # -- write path --------------------------------------------------------

    def _ensure_handle(self):
        if self._handle is None:
            self._handle = open(self.path, "a", buffering=1)
        return self._handle

    def append(self, seq, op, t, data):
        directive = None
        if self.faults is not None:
            directive = self.faults.storage_directive(seq)
        crc = None
        if directive == "corrupt":
            # Silent bitrot: flip the crc, keep running. Recovery must
            # catch it and refuse everything from this record on.
            crc = "{:08x}".format(
                int(record_crc(seq, op, t, data), 16) ^ 0xFFFFFFFF)
        line = encode_record(seq, op, t, data, crc=crc)
        handle = self._ensure_handle()
        if directive == "torn":
            # A crash mid-write: half the bytes, no newline, gone.
            handle.write(line[:max(len(line) // 2, 1)])
            self._die()
        handle.write(line + "\n")
        self.appended += 1
        self._unsynced += 1
        if directive == "crash":
            # The record is durable, the process is not: fsync, exit.
            self.flush()
            self._die()
        if self._unsynced >= self.fsync_batch:
            self.flush()

    def _die(self):
        from repro.resilience.hooks import CRASH_EXIT_CODE

        self._handle.flush()
        os.fsync(self._handle.fileno())
        os._exit(CRASH_EXIT_CODE)

    def flush(self):
        if self._handle is not None and self._unsynced:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._unsynced = 0

    def close(self):
        if self._handle is not None:
            self.flush()
            self._handle.close()
            self._handle = None

    # -- snapshots ---------------------------------------------------------

    def _snapshot_path(self, seq):
        return os.path.join(self.directory,
                            "snapshot-{:08d}.json".format(seq))

    def snapshot(self, state_canonical):
        """Write ``snapshot-<seq>.json`` atomically (tmp + rename)."""
        self.flush()
        seq = state_canonical["op_seq"]
        state_json = json.dumps(state_canonical, sort_keys=True,
                                separators=(",", ":"))
        payload = {
            "schema": JOURNAL_SCHEMA,
            "seq": seq,
            "state": state_canonical,
            "crc": "{:08x}".format(
                binascii.crc32(state_json.encode("utf-8")) & 0xFFFFFFFF),
        }
        handle = tempfile.NamedTemporaryFile(
            "w", dir=self.directory, suffix=".tmp", delete=False)
        try:
            with handle:
                json.dump(payload, handle, sort_keys=True,
                          separators=(",", ":"))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(handle.name, self._snapshot_path(seq))
        except OSError:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        return self._snapshot_path(seq)

    def compact(self, state_canonical):
        """Snapshot, then atomically drop journaled ops it covers.

        The rewritten journal keeps only records with ``seq`` at or
        beyond the snapshot (normally none). The snapshot is durable
        *before* the journal is replaced, so a crash between the two
        steps only leaves redundant records, never a gap.
        """
        path = self.snapshot(state_canonical)
        seq = state_canonical["op_seq"]
        self.close()
        kept = []
        if os.path.exists(self.path):
            with open(self.path) as handle:
                for line in handle:
                    try:
                        record = decode_record(line)
                    except ValueError:
                        continue  # compaction discards a bad tail
                    if record["seq"] >= seq:
                        kept.append(line.rstrip("\n"))
        self.compact_kept = len(kept)
        handle = tempfile.NamedTemporaryFile(
            "w", dir=self.directory, suffix=".tmp", delete=False)
        try:
            with handle:
                for line in kept:
                    handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(handle.name, self.path)
        except OSError:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        return path

    # -- recovery ----------------------------------------------------------

    def snapshot_files(self):
        """Snapshot paths in the directory, newest (highest seq) first."""
        names = [name for name in os.listdir(self.directory)
                 if name.startswith("snapshot-")
                 and name.endswith(".json")]
        return [os.path.join(self.directory, name)
                for name in sorted(names, reverse=True)]

    def _load_snapshot(self, info):
        for path in self.snapshot_files():
            try:
                with open(path) as handle:
                    payload = json.load(handle)
                state_json = json.dumps(payload["state"], sort_keys=True,
                                        separators=(",", ":"))
                crc = "{:08x}".format(
                    binascii.crc32(state_json.encode("utf-8"))
                    & 0xFFFFFFFF)
                if payload.get("schema") != JOURNAL_SCHEMA \
                        or payload.get("crc") != crc \
                        or payload.get("seq") \
                        != payload["state"].get("op_seq"):
                    raise ValueError("snapshot failed validation")
            except (OSError, ValueError, KeyError, TypeError):
                info.snapshots_invalid += 1
                continue
            return payload["state"], payload["seq"]
        return None, -1

    def load(self):
        if not os.path.isdir(self.directory):
            raise JournalRecoveryError(
                "no service directory at {}".format(self.directory))
        info = RecoveryInfo()
        snapshot, snap_seq = self._load_snapshot(info)
        info.snapshot_seq = snap_seq
        if info.snapshots_invalid and snapshot is None \
                and self.snapshot_files():
            # Every snapshot failed validation; genesis replay may
            # still succeed if the journal was never compacted, but
            # the operator must know the snapshots are rot.
            info.degraded = True
            info.reason = "invalid_snapshots"
        lines = []
        if os.path.exists(self.path):
            with open(self.path) as handle:
                lines = handle.readlines()
        records = []
        expected = snap_seq if snap_seq >= 0 else None
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            info.records_total += 1
            try:
                record = decode_record(line)
            except ValueError:
                # Everything from the first bad record on is dropped;
                # only non-blank lines count as records. A torn tail is
                # a *partial write*: the last record on disk, not even
                # parseable JSON. A record that parses but fails its
                # crc (or one with valid records after it) is bitrot.
                dropped = sum(1 for rest in lines[index:] if rest.strip())
                info.records_dropped += dropped
                info.records_total += dropped - 1
                info.degraded = True
                try:
                    json.loads(line)
                    parses = True
                except ValueError:
                    parses = False
                last = not any(rest.strip()
                               for rest in lines[index + 1:])
                info.reason = "torn_tail" if last and not parses \
                    else "corrupt_record"
                break
            if expected is not None and record["seq"] < expected:
                continue  # covered by the snapshot
            if expected is not None and record["seq"] != expected:
                info.records_dropped += len(lines) - index
                info.degraded = True
                info.reason = "sequence_gap"
                break
            records.append(record)
            expected = record["seq"] + 1
        if snapshot is None and records and records[0]["seq"] != 0:
            raise JournalRecoveryError(
                "journal starts at seq {} with no valid snapshot "
                "before it".format(records[0]["seq"]))
        info.records_replayed = len(records)
        return snapshot, records, info
