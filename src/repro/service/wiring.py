"""Wiring the lease authority into existing simulations.

:class:`repro.core.manager.LeaseManager` stays the in-process policy
engine it always was; when journaling is armed it additionally mirrors
its lease lifecycle into a :class:`~repro.service.service.LeaseService`
through the narrow :class:`ManagerPersistence` adapter. The mapping:

- manager ``create``      -> service ``acquire`` (consumer
  ``<ns>:uid:<uid>``, auto-registered; resource = the lease's type);
- manager ``renew`` (INACTIVE -> ACTIVE) -> service ``renew`` -- or a
  *fresh* ``acquire`` when the service-side lease already expired under
  the sweeper, which is exactly how monotonic lease ids get exercised;
- manager ``remove``      -> service ``release`` (skipped if the
  sweeper got there first);
- every end-of-term :class:`~repro.core.manager.Decision` with metrics
  -> service ``note_utility`` (utility score + misbehaviour flag);
- the service's seeded sweeper is driven from the same simulation
  clock (``maybe_sweep(sim.now)`` before each mirrored op).

Arming follows the telemetry precedent exactly: **environment
variable, never kwargs**. ``run_shard`` dispatches as a
content-addressed FuncSpec, so a ``service_journal`` kwarg would
change every shard's cache key and orphan every warm cache; instead
:data:`~repro.service.storage.ENV_JOURNAL` names the journal root and
:func:`attach_from_env` (called from ``LeaseManager.__init__``) is a
no-op when it is unset -- the acceptance bar that cache keys,
checkpoints and report bytes are unchanged with the service off.

Fork safety mirrors :class:`~repro.telemetry.writer.TelemetryWriter`:
each worker process writes its own subdirectory
(``w-p<pid>-<NN>/``) under the journal root, so forked fleet workers
never interleave appends in one journal file.
"""

import atexit
import math
import os

from repro.service.service import LeaseService
from repro.service.storage import (
    DEFAULT_SERVICE_ROOT,
    ENV_JOURNAL,
    JournalStorage,
)

#: Service-side lease terms must be finite (the journal is JSON); an
#: infinite manager term maps to this stand-in (~30 years).
MAX_TERM_S = 1e9


def default_service_dir(fingerprint):
    """``results/.service/<fp12>/`` for one run fingerprint."""
    return os.path.join(DEFAULT_SERVICE_ROOT, fingerprint[:12])


def _finite_term(term_s):
    term_s = float(term_s)
    return term_s if math.isfinite(term_s) else MAX_TERM_S


# Per-process service registry: root -> (pid, LeaseService). A forked
# worker inherits the dict but not the pid, so it transparently gets
# its own service (and its own journal subdirectory).
_SERVICES = {}
_WORKER_SERIAL = 0
_NAMESPACE_SERIAL = 0
_ATEXIT_ARMED = False


def _close_services():
    for __, service in list(_SERVICES.values()):
        try:
            service.close()
        except OSError:
            pass
    _SERVICES.clear()


def process_service(root):
    """This process's service for ``root``, creating it on first use."""
    global _WORKER_SERIAL, _ATEXIT_ARMED
    pid = os.getpid()
    entry = _SERVICES.get(root)
    if entry is not None and entry[0] == pid:
        return entry[1]
    subdir = os.path.join(root,
                          "w-p{}-{:02d}".format(pid, _WORKER_SERIAL))
    _WORKER_SERIAL += 1
    service = LeaseService(JournalStorage(subdir))
    _SERVICES[root] = (pid, service)
    if not _ATEXIT_ARMED:
        atexit.register(_close_services)
        _ATEXIT_ARMED = True
    return service


def attach_from_env(manager):
    """The manager's persistence hook, or None when journaling is off.

    Reads :data:`~repro.service.storage.ENV_JOURNAL`; a single dict
    lookup when unset, so the default path costs nothing.
    """
    root = os.environ.get(ENV_JOURNAL)
    if not root:
        return None
    global _NAMESPACE_SERIAL
    namespace = "m{}".format(_NAMESPACE_SERIAL)
    _NAMESPACE_SERIAL += 1
    persistence = ManagerPersistence(process_service(root), manager,
                                     namespace)
    manager.listeners.append(persistence.on_decision)
    return persistence


class ManagerPersistence:
    """Mirrors one LeaseManager's lifecycle into a LeaseService."""

    def __init__(self, service, manager, namespace):
        self.service = service
        self.manager = manager
        self.namespace = namespace
        self.lease_ids = {}  # manager descriptor -> service lease id

    def _consumer(self, uid):
        return "{}:uid:{}".format(self.namespace, uid)

    def _sync(self):
        now = self.manager.sim.now
        self.service.maybe_sweep(now)
        return now

    def _service_lease(self, descriptor):
        lease_id = self.lease_ids.get(descriptor)
        if lease_id is None:
            return None, None
        return lease_id, self.service.state.lease(lease_id)

    def on_create(self, lease):
        t = self._sync()
        consumer = self._consumer(lease.uid)
        self.service.ensure_registered(consumer, t=t)
        self.lease_ids[lease.descriptor] = self.service.acquire(
            consumer, lease.rtype.value, t=t,
            term_s=_finite_term(lease.term_length))

    def on_renew(self, lease):
        t = self._sync()
        lease_id, record = self._service_lease(lease.descriptor)
        if record is not None and record["state"] == "active":
            self.service.renew(lease_id, t=t,
                               term_s=_finite_term(lease.term_length))
        else:
            # The sweeper expired the old service lease while the
            # manager-side lease idled INACTIVE: a renewal is a fresh
            # grant with the next monotonic id, never a resurrection.
            self.on_create(lease)

    def on_remove(self, lease):
        t = self._sync()
        lease_id, record = self._service_lease(lease.descriptor)
        self.lease_ids.pop(lease.descriptor, None)
        if record is not None and record["state"] == "active":
            self.service.release(lease_id, t=t)

    def on_decision(self, decision):
        t = self._sync()
        if decision.metrics is None:
            return
        __, record = self._service_lease(decision.lease.descriptor)
        if record is None:
            return
        self.service.note_utility(
            record["id"], decision.metrics.utility_score, t=t,
            misbehavior=decision.behavior.is_misbehavior)
