"""The lease authority's replicated state and its single reducer.

Every mutation of the service -- live call or journal replay -- goes
through :meth:`ServiceState.apply`, the one reducer, with pure-data
arguments ``(op, t, data)``. That is what makes recovery byte-identical
by construction: the journal stores exactly the reducer inputs, so a
replayed state performs the *same float operations in the same order*
as the live one, and the canonical-JSON fingerprint pins it.

Nothing in here touches the wall clock, the filesystem or any RNG; the
state is a pure value. Ops:

- ``register`` ``{"name"}`` -- create a consumer;
- ``acquire`` ``{"consumer", "resource", "term_s"}`` -- new ACTIVE
  lease with the next monotonic id, expiring at ``t + term_s``;
- ``renew`` ``{"lease", "term_s"}`` -- extend an ACTIVE lease's term;
- ``release`` ``{"lease"}`` (+ optional ``"utility"``) -- ACTIVE ->
  RELEASED, folding the utility score into the stats moments;
- ``note_utility`` ``{"lease", "value"}`` (+ optional
  ``"misbehavior"``) -- fold a per-term utility observation without a
  state change;
- ``sweep`` ``{"expired": [...], "scheduled": bool}`` -- ACTIVE ->
  EXPIRED for each listed lease. The expired *list* is journaled (not
  recomputed on replay), so replay never re-derives a decision.
"""

import hashlib
import json

from repro.fleet.stats import Moments

#: Bump on incompatible state-shape changes; snapshots carry it.
STATE_SCHEMA = 1

#: Service-level lease states. Deliberately smaller than the device
#: side's Fig. 5 machine: the authority tracks *who owns what until
#: when*; term-by-term behaviour policy stays in
#: :class:`repro.core.manager.LeaseManager`.
ACTIVE = "active"
RELEASED = "released"
EXPIRED = "expired"

#: Every op kind the reducer understands (also the journal vocabulary).
OP_KINDS = ("register", "acquire", "renew", "release", "note_utility",
            "sweep")

#: Required ``data`` fields per op, shared with the journal linter.
OP_FIELDS = {
    "register": ("name",),
    "acquire": ("consumer", "resource", "term_s"),
    "renew": ("lease", "term_s"),
    "release": ("lease",),
    "note_utility": ("lease", "value"),
    "sweep": ("expired", "scheduled"),
}


class StateError(Exception):
    """An op could not be applied (unknown lease, illegal transition)."""


def _lease_key(lease_id):
    """Zero-padded string key: JSON object keys sort like the ids."""
    return "{:08d}".format(lease_id)


class ServiceState:
    """The authority's whole persistent state, one reducer away."""

    def __init__(self):
        self.consumers = {}   # name -> {"registered_t": float}
        self.leases = {}      # _lease_key(id) -> lease record dict
        self.next_lease_id = 1
        self.op_seq = 0       # ops applied so far (== next journal seq)
        self.sweep_index = 0  # *scheduled* sweeps applied (cadence pos)
        self.swept_total = 0
        self.counts = {}      # op kind -> count, plus derived counters
        self.stats = {}       # "consumer|resource" -> Moments
        #: Global fold of every utility observation, in arrival order.
        #: The recovery invariant checks that merging the per-key
        #: moments agrees with this independent accumulator.
        self.stats_all = Moments()

    # -- the reducer -------------------------------------------------------

    def check(self, op, t, data):
        """Precondition check for one op: raises StateError, never
        mutates. ``apply`` runs it first, and the service's write-ahead
        path runs it *before* journaling, so an op the reducer would
        reject can never reach the journal and poison replay."""
        if op not in OP_KINDS:
            raise StateError("unknown service op {!r}".format(op))
        for field in OP_FIELDS[op]:
            if field not in data:
                raise StateError("op {!r} missing field {!r}".format(
                    op, field))
        if op == "register":
            if data["name"] in self.consumers:
                raise StateError("consumer {!r} already registered"
                                 .format(data["name"]))
        elif op == "acquire":
            if data["consumer"] not in self.consumers:
                raise StateError("unknown consumer {!r}".format(
                    data["consumer"]))
        elif op in ("renew", "release"):
            lease = self._lease(data)
            if lease["state"] != ACTIVE:
                raise StateError("cannot {} {} lease {}".format(
                    op, lease["state"], lease["id"]))
        elif op == "note_utility":
            self._lease(data)
        elif op == "sweep":
            for lease_id in data["expired"]:
                lease = self._lease({"lease": lease_id})
                if lease["state"] != ACTIVE:
                    raise StateError("sweep expired {} lease {}".format(
                        lease["state"], lease["id"]))

    def apply(self, op, t, data):
        """Apply one op. The only mutator, live and during replay.

        ``check`` runs before any handler touches the state, so a
        rejected op -- including a sweep listing one bad lease among
        good ones -- leaves the state byte-identically unchanged.
        """
        self.check(op, t, data)
        getattr(self, "_op_" + op)(float(t), data)
        self.op_seq += 1
        self.counts[op] = self.counts.get(op, 0) + 1

    def _op_register(self, t, data):
        self.consumers[data["name"]] = {"registered_t": t}

    def _op_acquire(self, t, data):
        consumer = data["consumer"]
        lease_id = self.next_lease_id
        self.next_lease_id += 1
        term_s = float(data["term_s"])
        self.leases[_lease_key(lease_id)] = {
            "id": lease_id,
            "consumer": consumer,
            "resource": data["resource"],
            "state": ACTIVE,
            "acquired_t": t,
            "term_s": term_s,
            "expires_t": t + term_s,
            "renewals": 0,
            "released_t": None,
        }

    def _lease(self, data):
        lease = self.leases.get(_lease_key(int(data["lease"])))
        if lease is None:
            raise StateError("unknown lease {}".format(data["lease"]))
        return lease

    def _op_renew(self, t, data):
        lease = self._lease(data)
        term_s = float(data["term_s"])
        lease["term_s"] = term_s
        lease["expires_t"] = t + term_s
        lease["renewals"] += 1

    def _op_release(self, t, data):
        lease = self._lease(data)
        lease["state"] = RELEASED
        lease["released_t"] = t
        utility = data.get("utility")
        if utility is not None:
            self._fold_utility(lease, float(utility))

    def _op_note_utility(self, t, data):
        lease = self._lease(data)
        self._fold_utility(lease, float(data["value"]))
        if data.get("misbehavior"):
            self.counts["misbehaviors"] = \
                self.counts.get("misbehaviors", 0) + 1

    def _op_sweep(self, t, data):
        for lease_id in data["expired"]:
            lease = self._lease({"lease": lease_id})
            lease["state"] = EXPIRED
            lease["released_t"] = t
        self.swept_total += len(data["expired"])
        if data["scheduled"]:
            self.sweep_index += 1

    def _fold_utility(self, lease, value):
        key = "{}|{}".format(lease["consumer"], lease["resource"])
        moments = self.stats.get(key)
        if moments is None:
            moments = self.stats[key] = Moments()
        moments.add(value)
        self.stats_all.add(value)

    # -- queries -----------------------------------------------------------

    def lease(self, lease_id):
        """The lease record dict, or None."""
        return self.leases.get(_lease_key(int(lease_id)))

    def active_leases(self):
        """ACTIVE lease records, ascending by id."""
        return [lease for __, lease in sorted(self.leases.items())
                if lease["state"] == ACTIVE]

    def expired_by(self, now):
        """Ids of ACTIVE leases whose term has lapsed at ``now``."""
        return [lease["id"] for lease in self.active_leases()
                if lease["expires_t"] <= now]

    def leases_for(self, consumer):
        return [lease for __, lease in sorted(self.leases.items())
                if lease["consumer"] == consumer]

    # -- canonical form ----------------------------------------------------

    def to_canonical(self):
        """A pure-JSON dict capturing the whole state, key-sorted."""
        return {
            "schema": STATE_SCHEMA,
            "consumers": {name: dict(record) for name, record
                          in sorted(self.consumers.items())},
            "leases": {key: dict(lease) for key, lease
                       in sorted(self.leases.items())},
            "next_lease_id": self.next_lease_id,
            "op_seq": self.op_seq,
            "sweep_index": self.sweep_index,
            "swept_total": self.swept_total,
            "counts": dict(sorted(self.counts.items())),
            "stats": {key: moments.to_dict() for key, moments
                      in sorted(self.stats.items())},
            "stats_all": self.stats_all.to_dict(),
        }

    def to_json(self):
        """Compact canonical JSON (lossless float round-trip)."""
        return json.dumps(self.to_canonical(), sort_keys=True,
                          separators=(",", ":"))

    def fingerprint(self):
        """sha256 over the canonical JSON: the recovery contract."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    @classmethod
    def from_canonical(cls, payload):
        if payload.get("schema") != STATE_SCHEMA:
            raise StateError("state schema {} != {}".format(
                payload.get("schema"), STATE_SCHEMA))
        state = cls()
        state.consumers = {name: dict(record) for name, record
                           in payload["consumers"].items()}
        state.leases = {key: dict(lease) for key, lease
                        in payload["leases"].items()}
        state.next_lease_id = payload["next_lease_id"]
        state.op_seq = payload["op_seq"]
        state.sweep_index = payload["sweep_index"]
        state.swept_total = payload["swept_total"]
        state.counts = dict(payload["counts"])
        state.stats = {key: Moments.from_dict(data) for key, data
                       in payload["stats"].items()}
        state.stats_all = Moments.from_dict(payload["stats_all"])
        return state
