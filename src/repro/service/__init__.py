"""The lease authority as a service (ROADMAP item 1).

:mod:`repro.service` extracts the lease authority behind a narrow,
crash-safe facade -- the `ProxyManager`/`IStorage` layering of
SNIPPETS.md snippet 1 applied to the paper's OS-resident lease manager.
A :class:`LeaseService` owns a replicated-by-journal lease table plus
per-(consumer, resource) utility stats; all persistent state flows
through an :class:`IStorage` backend:

- :class:`InMemoryStorage` -- zero-overhead default for tests and
  throwaway runs;
- :class:`JournalStorage` -- an append-only JSONL write-ahead journal
  (crc per record, fsync-batched) plus periodic compacted snapshots,
  under ``results/.service/<fp>/`` by default.

Recovery (:meth:`LeaseService.recover`) replays the journal over the
latest valid snapshot and must reconstruct the lease table and utility
stats **byte-identically** (canonical-JSON state fingerprint) for every
crash point; the always-on recovery invariants live in
:mod:`repro.faults.invariants` and every recovery runs them. Storage
faults (torn tails, corrupt crcs, kills at record boundaries) are
injected through the ``storage`` target of
:class:`repro.resilience.hooks.HarnessFaults`.
"""

from repro.service.service import (  # noqa: F401
    DEFAULT_TERM_S,
    LeaseService,
    ServiceError,
)
from repro.service.state import ServiceState  # noqa: F401
from repro.service.storage import (  # noqa: F401
    ENV_JOURNAL,
    InMemoryStorage,
    IStorage,
    JournalRecoveryError,
    JournalStorage,
    RecoveryInfo,
)
from repro.service.wiring import (  # noqa: F401
    ManagerPersistence,
    attach_from_env,
    default_service_dir,
)
