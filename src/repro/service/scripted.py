"""A seeded scripted service day: the crash matrix's workload.

The crash matrix needs a workload with two properties:

1. **Determinism** -- the same ``(seed, apps, ops)`` always produces
   the same journal bytes and the same final state fingerprint.
2. **Resumability** -- a run killed at *any* journal record boundary
   can be recovered and *continued*, and the continued run's final
   fingerprint equals the uninterrupted run's, byte for byte.

Both come from one rule: scripted step ``k`` is a pure function of
``(seed, k)`` plus the current state. Each step owns a fresh
``Random((seed << 20) | k)``, so no RNG stream survives between steps
-- there is nothing to persist. The number of *completed* steps is
itself derivable from the recovered state (each step commits exactly
one action op of the four kinds counted by
:func:`completed_steps`; registers and sweeps are derived, idempotent
side-effects), so a recovered service knows exactly where to pick the
script back up. A crash mid-step (say between an auto-``register`` and
its ``acquire``) re-runs the step; the already-committed prefix is
idempotent (``ensure_registered``), so the journal the resumed run
appends is the journal the uninterrupted run would have written.
"""

from random import Random

from repro.service.state import ACTIVE

#: Simulation seconds between scripted steps.
STEP_INTERVAL_S = 30.0

#: Resources the scripted apps contend for (paper Table 1 spirit).
RESOURCES = ("gps", "wakelock", "net")

#: Candidate lease terms; shorter than a few sweep intervals so the
#: sweeper has real work (unrenewed leases genuinely expire mid-day).
TERMS_S = (45.0, 90.0, 180.0)

#: The op kinds that each count one completed scripted step.
_ACTION_OPS = ("acquire", "renew", "release", "note_utility")


def completed_steps(state):
    """How many scripted steps a (possibly recovered) state completed."""
    return sum(state.counts.get(op, 0) for op in _ACTION_OPS)


def step_time(index):
    """Simulation time of scripted step ``index``; pure in ``index``."""
    return (index + 1) * STEP_INTERVAL_S


def run_scripted_day(service, seed, apps=3, ops=120):
    """Drive ``service`` through the scripted day (or its remainder).

    Starts from :func:`completed_steps` of the service's current state,
    so calling this on a freshly-recovered service finishes the exact
    run the crashed process started. Returns a summary dict.
    """
    apps = max(int(apps), 1)
    ops = int(ops)
    start = completed_steps(service.state)
    for index in range(start, ops):
        t = step_time(index)
        service.maybe_sweep(t)
        _scripted_step(service, seed, index, t, apps)
    end_t = step_time(ops)
    service.maybe_sweep(end_t)
    service.flush()
    state = service.state
    return {
        "seed": seed,
        "apps": apps,
        "ops": ops,
        "steps_run": ops - start,
        "op_seq": state.op_seq,
        "active": len(state.active_leases()),
        "swept": state.swept_total,
        "fingerprint": service.fingerprint(),
    }


def _scripted_step(service, seed, index, t, apps):
    """One action op, chosen by the step's own seeded Random."""
    rng = Random((seed << 20) | index)
    active = service.state.active_leases()
    roll = rng.random()
    if not active or roll < 0.35:
        consumer = "app{}".format(rng.randrange(apps))
        service.ensure_registered(consumer, t=t)
        service.acquire(consumer, RESOURCES[rng.randrange(len(RESOURCES))],
                        t=t, term_s=TERMS_S[rng.randrange(len(TERMS_S))])
    elif roll < 0.55:
        lease = active[rng.randrange(len(active))]
        service.renew(lease["id"], t=t,
                      term_s=TERMS_S[rng.randrange(len(TERMS_S))])
    elif roll < 0.80:
        lease = active[rng.randrange(len(active))]
        service.note_utility(lease["id"], rng.uniform(0.0, 1.0), t=t,
                             misbehavior=rng.random() < 0.1)
    else:
        lease = active[rng.randrange(len(active))]
        service.release(lease["id"], t=t,
                        utility=rng.uniform(0.0, 1.0))
