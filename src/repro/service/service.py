"""The lease authority facade: narrow API over one journaled reducer.

:class:`LeaseService` is the ``ProxyManager`` of the snippet-1 layering:
callers see ``register`` / ``acquire`` / ``renew`` / ``release`` (plus
the ``with service.lease(...)`` convenience) and never the storage
underneath. Every mutation follows the same write-ahead discipline --
precondition-check the op against the current state, journal the
reducer inputs via :meth:`IStorage.append`, *then* apply them to
:class:`~repro.service.state.ServiceState` -- so at any crash point
the journal is either exactly the applied ops or one op ahead, every
journaled record replays cleanly, and replay reconstructs the state
byte-identically.

Time is always an explicit simulation-clock argument; the service never
reads the wall clock, which keeps journal bytes (and therefore state
fingerprints) deterministic across runs and hosts.

The expired-lease sweeper runs on a **seeded deterministic cadence**:
the due time of scheduled sweep ``k`` is a pure function of
``(seed, k)`` (base interval plus bounded jitter from a dedicated
``random.Random``), so a recovered service knows from
``state.sweep_index`` alone exactly when its next sweep is due -- O(1)
fast-forward, no cadence state to persist beyond the index the reducer
already tracks.

:meth:`LeaseService.recover` is the headline: load whatever the
backend salvaged (snapshot + journal suffix), replay it through the
same reducer, run the always-on recovery invariants from
:mod:`repro.faults.invariants`, and emit a ``service_recovered``
telemetry event. Invariant violations raise by default (``strict``);
degraded-but-consistent recoveries (torn tails, corrupt records) are
reported via :class:`~repro.service.storage.RecoveryInfo` and mapped
to exit code 75 by the CLI, matching the resilience conventions.
"""

import os

from contextlib import contextmanager
from random import Random

from repro.service.state import ACTIVE, ServiceState, StateError
from repro.service.storage import InMemoryStorage

#: Default lease term, mirroring the paper's minutes-scale terms.
DEFAULT_TERM_S = 300.0

#: Base spacing of scheduled sweeps (jittered per sweep, see
#: :meth:`LeaseService.sweep_due`).
SWEEP_INTERVAL_S = 60.0

#: Automatic snapshot cadence in ops; 0 disables auto-snapshots.
SNAPSHOT_EVERY = 256


class ServiceError(Exception):
    """A facade-level failure (bad call, failed recovery invariant)."""


class LeaseHandle:
    """What ``with service.lease(...)`` yields: one lease, one clock.

    The handle remembers the latest simulation time it was touched at,
    so the context manager can release at the right moment without the
    caller re-threading ``t`` through the exit path.
    """

    def __init__(self, service, lease_id, t):
        self.service = service
        self.id = lease_id
        self.t = float(t)

    @property
    def record(self):
        return self.service.state.lease(self.id)

    @property
    def active(self):
        return self.record["state"] == ACTIVE

    def _touch(self, t):
        if t is not None:
            self.t = float(t)
        return self.t

    def renew(self, t=None, term_s=None):
        self.service.renew(self.id, t=self._touch(t), term_s=term_s)

    def note(self, value, t=None, misbehavior=False):
        self.service.note_utility(self.id, value, t=self._touch(t),
                                  misbehavior=misbehavior)

    def release(self, t=None, utility=None):
        self.service.release(self.id, t=self._touch(t), utility=utility)


class LeaseService:
    """The facade. One state, one storage backend, one reducer path."""

    def __init__(self, storage=None, seed=0,
                 sweep_interval_s=SWEEP_INTERVAL_S,
                 snapshot_every=SNAPSHOT_EVERY):
        self.storage = storage if storage is not None else InMemoryStorage()
        self.seed = int(seed)
        self.sweep_interval_s = float(sweep_interval_s)
        self.snapshot_every = int(snapshot_every)
        self.state = ServiceState()
        self.recovery = None     # RecoveryInfo when built via recover()
        self.violations = []     # recovery invariant violations
        self._telemetry = None

    # -- the single mutation path ------------------------------------------

    def _commit(self, op, t, data):
        """Validate, write-ahead journal, then apply.

        The precondition check runs *before* the append: an op the
        reducer would reject never reaches the journal, so every
        journaled record replays cleanly -- seq N is on disk iff it
        was (or was about to be) applied, never a dead record whose
        seq the next op would reuse.
        """
        try:
            self.state.check(op, float(t), data)
        except StateError as error:
            raise ServiceError(str(error)) from error
        seq = self.state.op_seq
        self.storage.append(seq, op, float(t), data)
        self.state.apply(op, t, data)
        if self.snapshot_every \
                and self.state.op_seq % self.snapshot_every == 0:
            self.storage.snapshot(self.state.to_canonical())
        return seq

    # -- consumer / lease API ----------------------------------------------

    def register(self, name, t=0.0):
        if name in self.state.consumers:
            raise ServiceError(
                "consumer {!r} already registered".format(name))
        self._commit("register", t, {"name": name})

    def ensure_registered(self, name, t=0.0):
        if name not in self.state.consumers:
            self.register(name, t=t)

    def acquire(self, consumer, resource, t=0.0, term_s=DEFAULT_TERM_S):
        """Grant a new lease; returns its (monotonic) id."""
        if consumer not in self.state.consumers:
            raise ServiceError("unknown consumer {!r}; register first"
                               .format(consumer))
        self._commit("acquire", t, {
            "consumer": consumer, "resource": resource,
            "term_s": float(term_s)})
        return self.state.next_lease_id - 1

    def renew(self, lease_id, t, term_s=None):
        lease = self._require(lease_id)
        if term_s is None:
            term_s = lease["term_s"]
        self._commit("renew", t, {"lease": int(lease_id),
                                  "term_s": float(term_s)})

    def release(self, lease_id, t, utility=None):
        self._require(lease_id)
        data = {"lease": int(lease_id)}
        if utility is not None:
            data["utility"] = float(utility)
        self._commit("release", t, data)

    def note_utility(self, lease_id, value, t, misbehavior=False):
        self._require(lease_id)
        data = {"lease": int(lease_id), "value": float(value)}
        if misbehavior:
            data["misbehavior"] = True
        self._commit("note_utility", t, data)

    def _require(self, lease_id):
        lease = self.state.lease(lease_id)
        if lease is None:
            raise ServiceError("unknown lease {}".format(lease_id))
        return lease

    @contextmanager
    def lease(self, consumer, resource, t=0.0, term_s=DEFAULT_TERM_S):
        """Scoped lease: auto-registers, auto-releases on exit."""
        self.ensure_registered(consumer, t=t)
        handle = LeaseHandle(
            self, self.acquire(consumer, resource, t=t, term_s=term_s),
            t)
        try:
            yield handle
        finally:
            if handle.active:
                handle.release()

    # -- the sweeper --------------------------------------------------------

    def sweep_due(self, index):
        """When scheduled sweep ``index`` fires: pure in (seed, index).

        Base cadence plus bounded jitter from a per-sweep
        ``Random((seed << 16) ^ index)`` -- no RNG stream to persist,
        so a recovered service fast-forwards from ``state.sweep_index``
        in O(1).
        """
        jitter = Random((self.seed << 16) ^ index).uniform(
            0.0, self.sweep_interval_s / 4.0)
        return (index + 1) * self.sweep_interval_s + jitter

    def maybe_sweep(self, now):
        """Run every scheduled sweep due at or before ``now``."""
        swept = 0
        while True:
            due = self.sweep_due(self.state.sweep_index)
            if due > now:
                return swept
            swept += self._sweep_at(due, scheduled=True)

    def force_sweep(self, now):
        """An operator-forced sweep; does not advance the cadence."""
        return self._sweep_at(float(now), scheduled=False)

    def _sweep_at(self, t, scheduled):
        expired = self.state.expired_by(t)
        index = self.state.sweep_index
        self._commit("sweep", t, {"expired": expired,
                                  "scheduled": bool(scheduled)})
        self._emit("service_sweep", swept=len(expired),
                   active=len(self.state.active_leases()),
                   sweep_index=index)
        return len(expired)

    # -- persistence --------------------------------------------------------

    def checkpoint(self):
        """Force a snapshot of the current state."""
        return self.storage.snapshot(self.state.to_canonical())

    def compact(self):
        """Snapshot + drop covered journal records (journal backends)."""
        compact = getattr(self.storage, "compact", None)
        if compact is None:
            return self.checkpoint()
        return compact(self.state.to_canonical())

    def fingerprint(self):
        return self.state.fingerprint()

    def flush(self):
        self.storage.flush()

    def close(self):
        self.storage.flush()
        self.storage.close()
        if self._telemetry is not None:
            self._telemetry.close()
            self._telemetry = None

    # -- recovery -----------------------------------------------------------

    @classmethod
    def recover(cls, storage, seed=0,
                sweep_interval_s=SWEEP_INTERVAL_S,
                snapshot_every=SNAPSHOT_EVERY, strict=True):
        """Rebuild a service from whatever ``storage`` salvaged.

        Replays the journal suffix over the latest valid snapshot
        through the same reducer the live service used, then runs the
        always-on recovery invariants. With ``strict`` (the default) an
        invariant violation raises :class:`ServiceError`; storage-level
        degradation (torn tail, corrupt record) never raises -- it is
        reported in ``service.recovery`` for the caller (the CLI maps
        it to exit 75).
        """
        from repro.faults.invariants import check_service_recovery

        snapshot, records, info = storage.load()
        state = ServiceState() if snapshot is None \
            else ServiceState.from_canonical(snapshot)
        snapshot_canonical = state.to_canonical()
        for record in records:
            try:
                state.apply(record["op"], record["t"], record["data"])
            except StateError as error:
                raise ServiceError(
                    "replay failed at seq {}: {}".format(
                        record["seq"], error)) from error
        service = cls(storage=storage, seed=seed,
                      sweep_interval_s=sweep_interval_s,
                      snapshot_every=snapshot_every)
        service.state = state
        service.recovery = info
        service.violations = check_service_recovery(
            snapshot_canonical, records, state.to_canonical())
        service._emit(
            "service_recovered", snapshot_seq=info.snapshot_seq,
            records_replayed=info.records_replayed,
            records_dropped=info.records_dropped,
            leases=len(state.leases), state_fp=service.fingerprint(),
            degraded=info.degraded)
        if strict and service.violations:
            raise ServiceError(
                "recovery violated invariants: " + "; ".join(
                    violation.invariant
                    for violation in service.violations))
        return service

    # -- telemetry ----------------------------------------------------------

    def _emit(self, event, **fields):
        writer = self._writer()
        if writer is not None:
            writer.emit(event, **fields)

    def _writer(self):
        if self._telemetry is None:
            from repro.telemetry.emit import ENV_DIR, ENV_FP
            from repro.telemetry.writer import TelemetryWriter

            directory = os.environ.get(ENV_DIR)
            if not directory:
                return None
            self._telemetry = TelemetryWriter(
                directory, "service", os.environ.get(ENV_FP, ""))
        return self._telemetry
