"""JobScheduler: constraint-based background jobs.

The modern Android idiom for background work (and Doze's primary
deferral surface): apps schedule periodic jobs with constraints
(network required, charging required); the scheduler runs each job
holding a system wakelock on the app's behalf and releases it when the
job's process finishes. Well-behaved apps in this codebase use either
alarms or jobs; jobs get constraint checking and Doze integration for
free.
"""

import itertools


class JobInfo:
    """One scheduled job."""

    _ids = itertools.count(1)

    def __init__(self, app, interval_s, runner, requires_network=False,
                 requires_charging=False):
        self.id = next(JobInfo._ids)
        self.app = app
        self.interval_s = interval_s
        self.runner = runner  # callable returning a generator (the work)
        self.requires_network = requires_network
        self.requires_charging = requires_charging
        self.cancelled = False
        self.run_count = 0
        self.deferred_count = 0
        self._lock = None  # scheduler-held wakelock, set by the service

    def cancel(self):
        self.cancelled = True

    def __repr__(self):
        return "JobInfo#{}(uid={}, every {:.0f}s)".format(
            self.id, self.app.uid, self.interval_s
        )


class JobScheduler:
    """Runs periodic jobs under their constraints."""

    name = "jobs"

    #: When constraints are unmet at the due time, retry this much later.
    RETRY_DELAY_S = 60.0

    def __init__(self, sim, phone):
        self.sim = sim
        self.phone = phone
        self.jobs = []
        #: Optional policy hook: ``policy.intercept_job(job) -> bool``.
        #: True means the policy swallowed this run (Doze queues it).
        self.policy = None
        self._pending = []  # jobs swallowed by the policy

    # -- app-facing API ------------------------------------------------------

    def schedule(self, app, interval_s, runner, requires_network=False,
                 requires_charging=False):
        """Schedule ``runner`` (a generator function) every ``interval_s``."""
        app.ipc("jobs", "schedule")
        job = JobInfo(app, interval_s, runner,
                      requires_network=requires_network,
                      requires_charging=requires_charging)
        # One scheduler-held wakelock per job, like the real service.
        job._lock = self.phone.power.new_wakelock(
            app, "job:{}".format(job.id)
        )
        self.jobs.append(job)
        self.sim.schedule(interval_s, lambda: self._due(job))
        return job

    # -- policy integration -------------------------------------------------------

    def flush_pending(self):
        """Run every policy-deferred job now (Doze maintenance window)."""
        pending, self._pending = self._pending, []
        for job in pending:
            self._execute(job)

    # -- internals -------------------------------------------------------------

    def _due(self, job):
        if job.cancelled:
            return
        # Always re-arm the period first.
        self.sim.schedule(job.interval_s, lambda: self._due(job))
        if self.policy is not None and self.policy.intercept_job(job):
            job.deferred_count += 1
            self._queue_pending(job)
            return
        if not self._constraints_met(job):
            job.deferred_count += 1
            self.sim.schedule(self.RETRY_DELAY_S,
                              lambda: self._retry(job))
            return
        self._execute(job)

    def _queue_pending(self, job):
        # Periodic jobs coalesce: at most one pending run per job.
        if job not in self._pending:
            self._pending.append(job)

    def _retry(self, job):
        if job.cancelled:
            return
        if self.policy is not None and self.policy.intercept_job(job):
            job.deferred_count += 1
            self._queue_pending(job)
            return
        if self._constraints_met(job):
            self._execute(job)

    def _constraints_met(self, job):
        if job.requires_network and not self.phone.env.network.connected:
            return False
        if job.requires_charging:
            return False  # the simulated phone is never on the charger
        return True

    def _execute(self, job):
        if job.cancelled:
            return
        job.run_count += 1
        # The scheduler takes the wakelock *before* starting the job so
        # the work can run even if the device was asleep when it was due.
        job._lock.acquire()
        proc = job.app.spawn(
            job.runner(), name="{}.job{}".format(job.app.name, job.id)
        )

        def release(_result):
            if job._lock.held:
                job._lock.release()

        proc.done_event.add_waiter(release)
