"""BluetoothService: scan sessions and connections.

Table 1 groups Bluetooth with sensors: it is listener-based (a scan
callback keeps firing once registered), cannot exhibit Frequent-Ask, and
its Long-Holding semantic is about the *consumer* of the scan results.
The classic bug class is a leaked discovery scan: discovery is the
expensive mode (~2-3x the connected draw), and apps forget to call
``cancel_discovery`` on some paths.
"""

import enum

from repro.droid.resources import KernelObject, ResourceType


class BluetoothMode(enum.Enum):
    OFF = "off"
    CONNECTED = "connected"  # maintaining a connection, duty-cycled
    DISCOVERY = "discovery"  # inquiry scan: the expensive mode


class BluetoothRecord(KernelObject):
    """One scan session or connection."""

    def __init__(self, sim, uid, mode, listener):
        super().__init__(sim, uid, ResourceType.BLUETOOTH, mode.value)
        self.mode = mode
        self.listener = listener
        self.results_delivered = 0
        self.consumer_active = True
        self.consumer_active_time = 0.0
        self._seg_since = None
        self._delivery_timer = None


class BluetoothSession:
    """App-side descriptor for a scan session / connection."""

    def __init__(self, service, record):
        self._service = service
        self.record = record

    def close(self):
        self._service.close(self)

    def set_consumer_active(self, active):
        self._service.set_consumer_active(self.record, active)


class BluetoothService:
    name = "bluetooth"

    #: Seconds between scan-result deliveries during discovery.
    DISCOVERY_RESULT_INTERVAL_S = 4.0
    #: Seconds between notification deliveries on a maintained
    #: connection (the paired device pushes data through it).
    CONNECTED_RESULT_INTERVAL_S = 3.0

    def __init__(self, sim, monitor, profile, rng):
        self.sim = sim
        self.monitor = monitor
        self.profile = profile
        self.rng = rng
        self.records = []
        self._active = set()
        self.listeners = []
        self.gates = []
        #: Monotonic count of activate/deactivate flips -- lets governors
        #: fingerprint "has anything happened since my last scan?".
        self.transitions = 0

    @property
    def active_count(self):
        """Number of currently honoured sessions. O(1)."""
        return len(self._active)

    # -- app-facing API ------------------------------------------------------

    def start_discovery(self, app, listener):
        """Begin a device-discovery scan (the expensive mode)."""
        return self._open(app, BluetoothMode.DISCOVERY, listener)

    def connect(self, app, listener=None):
        """Maintain a connection to a paired device."""
        return self._open(app, BluetoothMode.CONNECTED,
                          listener or (lambda result: None))

    def _open(self, app, mode, listener):
        app.ipc("bluetooth", "open:{}".format(mode.value))
        record = BluetoothRecord(self.sim, app.uid, mode, listener)
        self.records.append(record)
        record.acquire_count += 1
        record.mark_held(True)
        self._notify("on_bluetooth_created", record)
        allowed = all(gate(record) for gate in self.gates)
        self._notify("on_bluetooth_open", record, allowed)
        if allowed:
            self._activate(record)
        return BluetoothSession(self, record)

    def close(self, session):
        record = session.record
        record.release_count += 1
        record.mark_held(False)
        self._settle(record)
        self._notify("on_bluetooth_close", record)
        self._deactivate(record)

    def set_consumer_active(self, record, active):
        self._settle(record)
        record.consumer_active = active

    # -- governor ops ------------------------------------------------------------

    def revoke(self, record):
        if record.os_active:
            self._deactivate(record)
            self._notify("on_bluetooth_revoked", record)

    def restore(self, record):
        if record.app_held and not record.os_active and not record.dead:
            self._activate(record)
            self._notify("on_bluetooth_restored", record)

    def kill_app_sessions(self, uid):
        for record in self.records:
            if record.uid == uid and not record.dead:
                record.mark_held(False)
                self._deactivate(record)
                record.dead = True
                self._notify("on_bluetooth_dead", record)

    def settle_stats(self):
        for record in self.records:
            if record in self._active:
                self._settle(record)
            record.settle()

    # -- internals ----------------------------------------------------------

    def _rail_name(self, record):
        return "bluetooth:{}".format(record.token.id)

    def _power_for(self, record):
        if record.mode is BluetoothMode.DISCOVERY:
            return self.profile.bluetooth_discovery_mw
        return self.profile.bluetooth_connected_mw

    def _activate(self, record):
        if record.os_active:
            return
        record.mark_active(True)
        record._seg_since = self.sim.now
        self._active.add(record)
        self.transitions += 1
        self.monitor.set_rail(self._rail_name(record),
                              self._power_for(record), (record.uid,))
        self._schedule_delivery(record)

    def _deactivate(self, record):
        if not record.os_active:
            return
        self._settle(record)
        record.mark_active(False)
        record._seg_since = None
        self._active.discard(record)
        self.transitions += 1
        if record._delivery_timer is not None:
            record._delivery_timer.cancel()
            record._delivery_timer = None
        self.monitor.set_rail(self._rail_name(record), 0.0, ())

    def _schedule_delivery(self, record):
        interval = (self.DISCOVERY_RESULT_INTERVAL_S
                    if record.mode is BluetoothMode.DISCOVERY
                    else self.CONNECTED_RESULT_INTERVAL_S)
        record._delivery_timer = self.sim.schedule(
            interval, lambda: self._deliver(record)
        )

    def _deliver(self, record):
        if record not in self._active:
            return
        self._settle(record)
        record.results_delivered += 1
        record.listener(("device", self.rng.randrange(2 ** 16)))
        self._notify("on_bluetooth_result", record)
        self._schedule_delivery(record)

    def _settle(self, record):
        now = self.sim.now
        if record._seg_since is None:
            return
        elapsed = now - record._seg_since
        if elapsed > 0 and record.consumer_active:
            record.consumer_active_time += elapsed
        record._seg_since = now

    def _notify(self, method, *args):
        for listener in list(self.listeners):
            handler = getattr(listener, method, None)
            if handler is not None:
                handler(*args)
