"""LocationManagerService: GPS requests, the fix state machine, delivery.

GPS is the one resource where *asking* itself burns power (Table 1: only
GPS can exhibit Frequent-Ask behaviour): while any honoured registration
exists and no fix is held, the receiver is SEARCHING at the highest draw.
Weak signal (``GpsEnvironment.lock_possible == False``) means the search
never succeeds -- the BetterWeather trigger (Fig. 1).

Listener callbacks are interrupt-driven: they fire even when the device
is otherwise suspended (the GPS chip wakes the app briefly), matching how
background location apps keep collecting without an explicit wakelock.
"""

import enum

from repro.droid.resources import KernelObject, ResourceType


class GpsState(enum.Enum):
    OFF = "off"
    SEARCHING = "searching"
    LOCKED = "locked"


class Location:
    """One delivered fix."""

    __slots__ = ("time", "distance_from_start")

    def __init__(self, time, distance_from_start):
        self.time = time
        self.distance_from_start = distance_from_start

    def __repr__(self):
        return "Location(t={:.1f}, d={:.1f}m)".format(
            self.time, self.distance_from_start
        )


class LocationRecord(KernelObject):
    """Kernel-side record of one location-updates registration."""

    def __init__(self, sim, uid, listener, interval):
        super().__init__(sim, uid, ResourceType.GPS, "location-updates")
        self.listener = listener
        self.interval = interval
        # GPS-specific cumulative stats
        self.search_time = 0.0  # active time spent without a fix
        self.locked_time = 0.0  # active time with a fix held
        self.fixes_delivered = 0
        self.distance_moved = 0.0
        # Consumer (bound Activity) lifetime for the LHB metric (§3.3).
        self.consumer_active = True
        self.consumer_active_time = 0.0
        self._seg_since = None
        self._delivery_timer = None
        self._last_delivery_distance = None

    def counters(self):
        base = super().counters()
        base.update(
            search_time=self.search_time,
            locked_time=self.locked_time,
            fixes_delivered=self.fixes_delivered,
            distance_moved=self.distance_moved,
            consumer_active_time=self.consumer_active_time,
        )
        return base


class LocationRegistration:
    """App-side descriptor for a registration."""

    def __init__(self, service, record):
        self._service = service
        self.record = record

    def remove(self):
        self._service.remove_updates(self)

    def set_consumer_active(self, active):
        """Mark the bound Activity alive/dead (drives GPS utilization)."""
        self._service.set_consumer_active(self.record, active)


class LocationManagerService:
    name = "location"

    RAIL = "gps"
    #: While searching without lock possibility, retry cadence for
    #: counting failed fix attempts.
    SEARCH_RETRY_S = 10.0
    #: A receiver that held a fix this recently re-locks hot (ephemeris
    #: still valid), like real GPS hardware.
    WARM_FIX_WINDOW_S = 60.0
    WARM_TTFF_S = 0.8

    def __init__(self, sim, monitor, profile, env, rng):
        self.sim = sim
        self.monitor = monitor
        self.profile = profile
        self.env = env
        self.rng = rng
        self.records = []
        self._active = set()  # honoured registrations
        #: Monotonic count of activate/deactivate flips -- lets governors
        #: fingerprint "has anything happened since my last scan?".
        self.transitions = 0
        self.state = GpsState.OFF
        self.listeners = []
        self.gates = []
        self._fix_timer = None
        self._total_distance = 0.0
        self._distance_since = None
        self._last_locked_at = None

    @property
    def active_count(self):
        """Number of currently honoured registrations. O(1)."""
        return len(self._active)

    # -- app-facing API -----------------------------------------------------

    def request_location_updates(self, app, listener, interval):
        app.ipc("location", "requestLocationUpdates")
        record = LocationRecord(self.sim, app.uid, listener, interval)
        self.records.append(record)
        record.acquire_count += 1
        record.mark_held(True)
        self._notify("on_location_created", record)
        allowed = all(gate(record) for gate in self.gates)
        self._notify("on_location_request", record, allowed)
        if allowed:
            self._activate(record)
        return LocationRegistration(self, record)

    def remove_updates(self, registration):
        record = registration.record
        record.release_count += 1
        record.mark_held(False)
        self._settle(record)
        self._notify("on_location_removed", record)
        self._deactivate(record)

    def set_consumer_active(self, record, active):
        self._settle(record)
        record.consumer_active = active

    # -- governor ops ----------------------------------------------------------

    def revoke(self, record):
        if record.os_active:
            self._deactivate(record)
            self._notify("on_location_revoked", record)

    def restore(self, record):
        if record.app_held and not record.os_active and not record.dead:
            self._activate(record)
            self._notify("on_location_restored", record)

    def throttle_interval(self, record, factor):
        """Governor op (DefDroid): lengthen a registration's interval."""
        record.interval *= factor
        if record._delivery_timer is not None:
            record._delivery_timer.cancel()
            self._schedule_delivery(record)

    def kill_app_registrations(self, uid):
        for record in self.records:
            if record.uid == uid and not record.dead:
                record.mark_held(False)
                self._deactivate(record)
                record.dead = True
                self._notify("on_location_dead", record)

    # -- GPS state machine -------------------------------------------------------

    def _activate(self, record):
        if record.os_active:
            return
        self._settle_all()
        record.mark_active(True)
        record._seg_since = self.sim.now
        self._active.add(record)
        self.transitions += 1
        self._update_engine()
        self._refresh_rail_owners()
        if self.state is GpsState.LOCKED:
            record._last_delivery_distance = self._current_distance()
            self._schedule_delivery(record)

    def _deactivate(self, record):
        if not record.os_active:
            return
        self._settle_all()
        record.mark_active(False)
        record._seg_since = None
        self._active.discard(record)
        self.transitions += 1
        if record._delivery_timer is not None:
            record._delivery_timer.cancel()
            record._delivery_timer = None
        self._update_engine()
        self._refresh_rail_owners()

    def _update_engine(self):
        if not self._active:
            self._set_state(GpsState.OFF)
            return
        if self.state is GpsState.OFF:
            self._set_state(GpsState.SEARCHING)
            self._begin_search()

    def _begin_search(self):
        if self._fix_timer is not None:
            self._fix_timer.cancel()
            self._fix_timer = None
        ttf = self.env.gps.time_to_fix(self.rng)
        if ttf is not None and self._last_locked_at is not None \
                and self.sim.now - self._last_locked_at \
                <= self.WARM_FIX_WINDOW_S:
            ttf = min(ttf, self.WARM_TTFF_S * (0.75 + 0.5 * self.rng.random()))
        if ttf is None:
            # No lock achievable; retry later (keeps burning search power).
            self._notify_fix_attempt(False)
            self._fix_timer = self.sim.schedule(
                self.SEARCH_RETRY_S, self._search_tick
            )
        else:
            self._fix_timer = self.sim.schedule(ttf, self._acquire_fix)

    def _search_tick(self):
        if self.state is not GpsState.SEARCHING:
            return
        self._begin_search()

    def _acquire_fix(self):
        if self.state is not GpsState.SEARCHING:
            return
        self._settle_all()
        self._set_state(GpsState.LOCKED)
        self._notify_fix_attempt(True)
        distance = self._current_distance()
        for record in self._active:
            record._last_delivery_distance = distance
            self._schedule_delivery(record)

    def _lose_fix(self):
        if self.state is not GpsState.LOCKED:
            return
        self._settle_all()
        for record in self._active:
            if record._delivery_timer is not None:
                record._delivery_timer.cancel()
                record._delivery_timer = None
        self._set_state(GpsState.SEARCHING)
        self._begin_search()

    def _schedule_delivery(self, record):
        record._delivery_timer = self.sim.schedule(
            record.interval, lambda: self._deliver(record)
        )

    def _deliver(self, record):
        if record not in self._active or self.state is not GpsState.LOCKED:
            return
        if not self.env.gps.lock_possible:
            self._lose_fix()
            return
        self._settle_all()
        distance = self._current_distance()
        moved = distance - (record._last_delivery_distance or 0.0)
        record._last_delivery_distance = distance
        record.fixes_delivered += 1
        record.distance_moved += max(0.0, moved)
        location = Location(self.sim.now, distance)
        record.listener(location)
        self._notify("on_location_delivered", record, location)
        self._schedule_delivery(record)

    def settle_stats(self):
        """Fold elapsed time into every record's counters (profiling)."""
        self._settle_all()
        for record in self.records:
            record.settle()

    # -- accounting -----------------------------------------------------------

    def _set_state(self, state):
        if state == self.state:
            return
        self._settle_all()
        if self.state is GpsState.LOCKED:
            self._last_locked_at = self.sim.now
        self.state = state
        owners = tuple(sorted({r.uid for r in self._active}))
        if state is GpsState.OFF:
            self.monitor.set_rail(self.RAIL, 0.0, ())
        elif state is GpsState.SEARCHING:
            self.monitor.set_rail(self.RAIL, self.profile.gps_search_mw, owners)
            self._distance_since = None
        else:
            self.monitor.set_rail(self.RAIL, self.profile.gps_locked_mw, owners)
            self._distance_since = self.sim.now

    def _refresh_rail_owners(self):
        owners = tuple(sorted({r.uid for r in self._active}))
        power = self.monitor.rail_power(self.RAIL)
        self.monitor.set_rail(self.RAIL, power, owners)

    def _current_distance(self):
        self._settle_distance()
        return self._total_distance

    def _settle_distance(self):
        if self._distance_since is not None:
            elapsed = self.sim.now - self._distance_since
            self._total_distance += self.env.gps.distance_moved(elapsed)
            self._distance_since = self.sim.now

    def _settle(self, record):
        now = self.sim.now
        if record._seg_since is None:
            return
        elapsed = now - record._seg_since
        if elapsed > 0:
            if self.state is GpsState.SEARCHING:
                record.search_time += elapsed
            elif self.state is GpsState.LOCKED:
                record.locked_time += elapsed
            if record.consumer_active:
                record.consumer_active_time += elapsed
        record._seg_since = now

    def _settle_all(self):
        self._settle_distance()
        for record in self._active:
            self._settle(record)
        self._refresh_rail_owners()

    def _notify_fix_attempt(self, success):
        for record in self._active:
            self._notify("on_fix_attempt", record, success)

    def _notify(self, method, *args):
        for listener in list(self.listeners):
            handler = getattr(listener, method, None)
            if handler is not None:
                handler(*args)
