"""The Phone facade: one simulated device, fully wired.

Construct a Phone, install apps, optionally install a mitigation
(:mod:`repro.mitigation`), then run simulated time::

    phone = Phone(profile=PIXEL_XL, seed=7, mitigation=LeaseOSMitigation())
    phone.install(K9Mail(scenario="bad_server"))
    mark = phone.energy_mark()
    phone.run_for(minutes=30)
    print(phone.power_since(mark, uid=app.uid), "mW")
"""

import random

from repro.device.battery import Battery
from repro.device.power import PowerMonitor, SYSTEM_UID
from repro.device.profiles import PIXEL_XL
from repro.droid.alarms import AlarmManager
from repro.droid.app import AppContext
from repro.droid.audio import AudioService
from repro.droid.broadcasts import BroadcastManager
from repro.droid.bluetooth import BluetoothService
from repro.droid.connectivity import ConnectivityService
from repro.droid.cpu import CpuPowerModel
from repro.droid.display import DisplayService
from repro.droid.exceptions import ExceptionNoteHandler
from repro.droid.ipc import IpcBus
from repro.droid.jobs import JobScheduler
from repro.droid.location import LocationManagerService
from repro.droid.power_manager import PowerManagerService
from repro.droid.sensors import SensorManagerService
from repro.droid.suspend import SuspendController
from repro.droid.wifi import WifiService
from repro.env.environment import Environment
from repro.env.user import UserModel
from repro.sim.engine import Simulator


class EnergyMark:
    """Snapshot of the ledger at an instant, for interval power math."""

    __slots__ = ("time", "by_app", "total")

    def __init__(self, time, by_app, total):
        self.time = time
        self.by_app = by_app
        self.total = total


class Phone:
    """A simulated device: hardware + OS services + installed apps."""

    #: How long launching an app holds the device awake so the app's
    #: startup code can run and acquire its first resources.
    LAUNCH_WINDOW_S = 5.0
    #: How long one touch keeps the device awake.
    USER_ACTIVITY_WINDOW_S = 5.0

    def __init__(self, profile=PIXEL_XL, seed=1, mitigation=None,
                 connected=True, network_kind="wifi", gps_quality=0.9,
                 movement_mps=0.0, battery_level=1.0, ambient=True,
                 ambient_mean_s=300.0, dvfs=None):
        self.sim = Simulator()
        self.profile = profile
        self.rng = random.Random(seed)
        self.battery = Battery.for_profile(profile, battery_level)
        self.monitor = PowerMonitor(self.sim, profile, self.battery)
        self.env = Environment(
            self.sim, connected=connected, network_kind=network_kind,
            gps_quality=gps_quality, movement_mps=movement_mps,
        )
        self.ipc = IpcBus(self.sim, profile.ipc_latency_s)
        self.exceptions = ExceptionNoteHandler(self.sim)
        self.cpu = CpuPowerModel(self.sim, self.monitor, profile,
                                 dvfs=dvfs)
        self.suspend = SuspendController(self.sim, self.cpu)
        self.display = DisplayService(self.sim, self.monitor, profile,
                                      self.suspend)
        self.power = PowerManagerService(self.sim, self.cpu, self.suspend,
                                         self.display)
        self.location = LocationManagerService(
            self.sim, self.monitor, profile, self.env,
            random.Random(seed + 101),
        )
        self.sensors = SensorManagerService(
            self.sim, self.monitor, profile, random.Random(seed + 202)
        )
        self.wifi = WifiService(self.sim, self.monitor, profile, self.env)
        self.audio = AudioService(self.sim, self.monitor, profile)
        self.bluetooth = BluetoothService(
            self.sim, self.monitor, profile, random.Random(seed + 505)
        )
        self.net = ConnectivityService(
            self.sim, self.monitor, profile, self.env, self.exceptions,
            self.suspend,
        )
        self.net.wifi_service = self.wifi
        self.alarms = AlarmManager(self.sim, self.suspend)
        self.jobs = JobScheduler(self.sim, self)
        self.broadcasts = BroadcastManager(self.sim, self.suspend)
        self.env.network.on_change(
            lambda connected, kind: self.broadcasts.publish(
                BroadcastManager.CONNECTIVITY_CHANGE,
                {"connected": connected, "kind": kind},
            )
        )
        self.apps = {}
        self.foreground_uid = None
        self.lease_manager = None  # set by the LeaseOS mitigation
        self.user_activity_listeners = []  # callback() on touch/screen-on
        #: Ambient device events (pushes, connectivity chatter, handling):
        #: brief wakeups that exist under every mitigation. They are what
        #: makes system-wide deferral (Doze) fragile -- "any non-trivial
        #: activity can interrupt the deferral" (paper §7.3) -- while
        #: per-lease deferral does not care.
        self.ambient_listeners = []
        self._ambient_rng = random.Random(seed + 404)
        self._ambient_mean_s = ambient_mean_s
        if ambient:
            self._schedule_ambient()
        self.user = UserModel(self.sim, self, random.Random(seed + 303))
        self.suspend.set_process_provider(self._app_processes)
        self.env.network.on_change(lambda *_: self._refresh_baseline())
        self._refresh_baseline()
        # Boot state: screen off, nothing held -> deep sleep.
        self.suspend._reevaluate()
        self.mitigation = mitigation
        if mitigation is not None:
            mitigation.install(self)

    # -- app management -------------------------------------------------------

    def install(self, app, start=True, seed=None):
        """Install (and by default start) an app."""
        if app.uid in self.apps:
            raise ValueError("app {!r} already installed".format(app.name))
        app_seed = seed if seed is not None else self.rng.randrange(2 ** 31)
        app.install(AppContext(self), random.Random(app_seed))
        self.apps[app.uid] = app
        if start:
            # Launching keeps the device awake long enough for startup.
            self.suspend.hold_awake(
                "launch:{}".format(app.uid), self.LAUNCH_WINDOW_S
            )
            app.start()
        return app

    def kill_app(self, uid):
        """Terminate an app; services clean its kernel objects (§4.3)."""
        app = self.apps[uid]
        app.stop()
        self.power.kill_app_locks(uid)
        self.location.kill_app_registrations(uid)
        self.sensors.kill_app_registrations(uid)
        self.wifi.kill_app_locks(uid)
        self.bluetooth.kill_app_sessions(uid)
        self.broadcasts.unregister_app(uid)

    def restart_app(self, uid):
        """Restart a previously killed app (crash-restart semantics).

        The app keeps its uid and installed context; ``on_start`` runs
        again and the main loop is respawned, acquiring fresh kernel
        objects -- the old ones were cleaned by :meth:`kill_app`. Like a
        launch, the restart holds the device awake for the startup
        window.
        """
        app = self.apps[uid]
        if app.started:
            return app
        self.suspend.hold_awake(
            "launch:{}".format(app.uid), self.LAUNCH_WINDOW_S
        )
        app.start()
        return app

    def _app_processes(self):
        for app in self.apps.values():
            for proc in app.alive_processes():
                yield proc

    # -- user input -----------------------------------------------------------

    def screen_on(self):
        self.display.set_user_screen(True)
        self._fire_user_activity()

    def screen_off(self):
        self.display.set_user_screen(False)

    def set_foreground(self, uid):
        if self.foreground_uid is not None:
            previous = self.apps.get(self.foreground_uid)
            if previous is not None:
                previous.foreground = False
        self.foreground_uid = uid
        if uid is not None and uid in self.apps:
            self.apps[uid].foreground = True

    def touch(self, uid=None):
        """One user interaction with ``uid`` (default: foreground app)."""
        target = uid if uid is not None else self.foreground_uid
        self.display.note_interaction()
        self.power.note_interaction()
        self.suspend.hold_awake("user", self.USER_ACTIVITY_WINDOW_S)
        self._fire_user_activity()
        if target is not None and target in self.apps:
            self.apps[target].user_touch()

    def _fire_user_activity(self):
        for listener in list(self.user_activity_listeners):
            listener()

    def _schedule_ambient(self):
        delay = self._ambient_rng.expovariate(1.0 / self._ambient_mean_s)
        self.sim.schedule(delay, self._ambient_event)

    def _ambient_event(self):
        self.suspend.hold_awake("ambient", 2.0)
        for listener in list(self.ambient_listeners):
            listener()
        self._schedule_ambient()

    # -- time ---------------------------------------------------------------

    def run_for(self, seconds=None, minutes=None, hours=None):
        total = (seconds or 0.0) + 60.0 * (minutes or 0.0) \
            + 3600.0 * (hours or 0.0)
        self.sim.run_until(self.sim.now + total)
        self.monitor.settle()

    def run_until(self, when):
        self.sim.run_until(when)
        self.monitor.settle()

    # -- measurement ------------------------------------------------------------

    def energy_mark(self):
        self.monitor.settle()
        return EnergyMark(
            self.sim.now, self.monitor.ledger.by_app(),
            self.monitor.ledger.total_mj(),
        )

    def power_since(self, mark, uid=None):
        """Average draw in mW since ``mark``: per-app or whole-system."""
        self.monitor.settle()
        elapsed = self.sim.now - mark.time
        if elapsed <= 0:
            return 0.0
        if uid is None:
            return (self.monitor.ledger.total_mj() - mark.total) / elapsed
        current = self.monitor.ledger.by_app().get(uid, 0.0)
        return (current - mark.by_app.get(uid, 0.0)) / elapsed

    def dumpsys_batterystats(self, top=10):
        """A ``dumpsys batterystats``-style per-app blame report."""
        self.monitor.settle()
        now = self.sim.now
        if now <= 0:
            return "batterystats: no time elapsed"
        lines = [
            "Battery stats since boot ({:.0f} s, {:.0f}% remaining):".format(
                now, self.battery.level * 100.0),
            "  total: {:.1f} mW average draw".format(
                self.monitor.ledger.total_mj() / now),
        ]
        blame = sorted(self.monitor.ledger.by_app().items(),
                       key=lambda item: item[1], reverse=True)
        for uid, energy in blame[:top]:
            app = self.apps.get(uid)
            name = app.name if app else (
                "system" if uid == SYSTEM_UID else "uid:{}".format(uid))
            lines.append("  {:24s} {:8.1f} mW  ({:7.0f} mJ)".format(
                name, energy / now, energy))
        suspended_pct = 100.0 * self.suspend.suspended_time() / now
        lines.append("  deep sleep: {:.0f}% of uptime, {} suspends".format(
            suspended_pct, self.suspend.suspend_count))
        return "\n".join(lines)

    # -- internals -------------------------------------------------------------

    def _refresh_baseline(self):
        """Constant radio idle draws (system-attributed)."""
        network = self.env.network
        wifi_idle = self.profile.wifi_idle_mw if network.kind == "wifi" else 0.0
        self.monitor.set_rail("wifi_idle", wifi_idle, ())
        self.monitor.set_rail("radio_idle", self.profile.radio_idle_mw, ())

    @property
    def system_uid(self):
        return SYSTEM_UID
