"""Resource identities: binder tokens, resource types, kernel objects."""

import enum
import itertools


class ResourceType(enum.Enum):
    """The constrained resources LeaseOS manages (paper Table 1)."""

    WAKELOCK = "wakelock"  # partial wakelock: keeps the CPU awake
    SCREEN = "screen"  # screen-bright wakelock: keeps the display on
    GPS = "gps"  # location updates
    SENSOR = "sensor"  # accelerometer / orientation / etc. listeners
    WIFI = "wifi"  # Wi-Fi high-performance lock
    AUDIO = "audio"  # audio session
    BLUETOOTH = "bluetooth"  # discovery scans / connections


class IBinder:
    """A unique IPC token identifying one kernel object.

    In Android the app-side wrapper holds an ``IBinder`` whose kernel-side
    twin lives in the owning system service; the pair is the 1:1 mapping
    LeaseOS relies on (Section 4.2).
    """

    _ids = itertools.count(1)

    __slots__ = ("id",)

    def __init__(self):
        self.id = next(IBinder._ids)

    def __hash__(self):
        return hash(self.id)

    def __eq__(self, other):
        return isinstance(other, IBinder) and other.id == self.id

    def __repr__(self):
        return "IBinder#{}".format(self.id)


class KernelObject:
    """Base class for the per-resource records system services keep.

    ``app_held`` is the *app's view* (it called acquire and has not called
    release); ``os_active`` is whether the OS is actually honouring the
    resource right now. A governor that temporarily revokes a resource
    flips ``os_active`` off while ``app_held`` stays true -- the app-side
    descriptor remains valid and the app logic is unaffected (Section 4.6).
    """

    def __init__(self, sim, uid, rtype, name=""):
        self.sim = sim
        self.uid = uid
        self.rtype = rtype
        self.name = name
        self.token = IBinder()
        self.app_held = False
        self.os_active = False
        self.dead = False
        self.created_at = sim.now
        # cumulative accounting
        self.active_time = 0.0  # seconds os_active was true
        self.held_time = 0.0  # seconds app_held was true
        self._active_since = None
        self._held_since = None
        self.acquire_count = 0
        self.release_count = 0

    # -- state transitions (used by the owning service) ---------------------

    def settle(self):
        """Fold elapsed active/held intervals into the cumulative counters."""
        now = self.sim.now
        if self._active_since is not None:
            self.active_time += now - self._active_since
            self._active_since = now
        if self._held_since is not None:
            self.held_time += now - self._held_since
            self._held_since = now

    def mark_held(self, held):
        self.settle()
        if held and self._held_since is None:
            self._held_since = self.sim.now
        elif not held:
            self._held_since = None
        self.app_held = held

    def mark_active(self, active):
        self.settle()
        if active and self._active_since is None:
            self._active_since = self.sim.now
        elif not active:
            self._active_since = None
        self.os_active = active

    def counters(self):
        """Cumulative stats snapshot for lease accounting."""
        self.settle()
        return {
            "active_time": self.active_time,
            "held_time": self.held_time,
            "acquire_count": self.acquire_count,
            "release_count": self.release_count,
        }

    def __repr__(self):
        return "{}(uid={}, {}, held={}, active={})".format(
            type(self).__name__, self.uid, self.token, self.app_held,
            self.os_active,
        )
