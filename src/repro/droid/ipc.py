"""Binder IPC accounting.

Simulated IPC is synchronous (the discrete-event clock does not advance
during a call); instead every call's *modelled latency* is recorded here
so the latency experiments (paper Table 4 and Fig. 14) can report the
end-to-end cost a real phone would see. Governors can add per-call
overhead (e.g. a lease check on an expired lease).
"""

from collections import defaultdict


class IpcCall:
    __slots__ = ("time", "uid", "service", "method", "latency_s")

    def __init__(self, time, uid, service, method, latency_s):
        self.time = time
        self.uid = uid
        self.service = service
        self.method = method
        self.latency_s = latency_s

    def __repr__(self):
        return "IpcCall({}, {}.{}, {:.4f}s)".format(
            self.uid, self.service, self.method, self.latency_s
        )


class IpcBus:
    """Records every binder transaction with its modelled latency."""

    #: Modelled cost of one failed-and-retried binder transaction: the
    #: kernel-side timeout plus the retry, charged as extra latency.
    FAILURE_RETRY_PENALTY_S = 0.05

    def __init__(self, sim, base_latency_s=0.002):
        self.sim = sim
        self.base_latency_s = base_latency_s
        self.calls = []
        self._per_uid_latency = defaultdict(float)
        self._per_uid_count = defaultdict(int)
        #: Extra latency injected by a governor for the *next* call,
        #: keyed by (uid, service); see ``add_overhead``.
        self._overhead_hooks = []
        # Fault-injection window state (repro.faults): while a fault is
        # armed every transaction pays ``fault_extra_latency_s`` and
        # fails (once, with a retry penalty) with probability
        # ``fault_failure_rate``. Both default to the no-fault fast path.
        self.fault_extra_latency_s = 0.0
        self.fault_failure_rate = 0.0
        self.fault_rng = None  # dedicated Random owned by the injector
        self.failed_calls = 0

    def add_overhead_hook(self, hook):
        """Register ``hook(uid, service, method) -> extra_latency_s``."""
        self._overhead_hooks.append(hook)

    def set_fault_window(self, extra_latency_s=0.0, failure_rate=0.0,
                         rng=None):
        """Arm (or, with zeros, disarm) a binder fault window.

        Used by :class:`repro.faults.injector.FaultInjector`; latency
        spikes and transaction failures are deterministic given ``rng``.
        """
        self.fault_extra_latency_s = float(extra_latency_s)
        self.fault_failure_rate = float(failure_rate)
        if rng is not None:
            self.fault_rng = rng

    def record(self, uid, service, method, extra_latency_s=0.0):
        """Record one IPC and return its total modelled latency (seconds)."""
        latency = self.base_latency_s + extra_latency_s
        for hook in self._overhead_hooks:
            latency += hook(uid, service, method)
        if self.fault_extra_latency_s:
            latency += self.fault_extra_latency_s
        if self.fault_failure_rate and self.fault_rng is not None \
                and self.fault_rng.random() < self.fault_failure_rate:
            self.failed_calls += 1
            latency += self.FAILURE_RETRY_PENALTY_S
        call = IpcCall(self.sim.now, uid, service, method, latency)
        self.calls.append(call)
        self._per_uid_latency[uid] += latency
        self._per_uid_count[uid] += 1
        return latency

    def total_latency_s(self, uid):
        return self._per_uid_latency[uid]

    def call_count(self, uid=None):
        if uid is None:
            return len(self.calls)
        return self._per_uid_count[uid]

    def calls_for(self, uid):
        return [c for c in self.calls if c.uid == uid]
