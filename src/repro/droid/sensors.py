"""SensorService: listener registrations for physical sensors.

Sensors follow the listener semantics of GPS (Table 1, note *): once a
listener is registered the OS keeps invoking it, so "holding but not
using" means the *consumer* of the data (the bound Activity/overlay) is
gone or ignoring it, not that the physical resource idles. The
TapAndTurn and Riot cases (Table 5) are sensor apps that keep listeners
registered while producing no value for the user.
"""

import enum

from repro.droid.resources import KernelObject, ResourceType


class SensorType(enum.Enum):
    ACCELEROMETER = "accelerometer"
    ORIENTATION = "orientation"
    GYROSCOPE = "gyroscope"
    LIGHT = "light"
    PROXIMITY = "proximity"
    CAMERA_MOTION = "camera_motion"  # Haven-style monitoring


class SensorReading:
    __slots__ = ("time", "sensor_type", "value")

    def __init__(self, time, sensor_type, value):
        self.time = time
        self.sensor_type = sensor_type
        self.value = value


class SensorRecord(KernelObject):
    def __init__(self, sim, uid, sensor_type, listener, rate_hz):
        super().__init__(sim, uid, ResourceType.SENSOR, sensor_type.value)
        self.sensor_type = sensor_type
        self.listener = listener
        self.rate_hz = rate_hz
        self.events_delivered = 0
        self.consumer_active = True
        self.consumer_active_time = 0.0
        self._seg_since = None
        self._delivery_timer = None


class SensorRegistration:
    def __init__(self, service, record):
        self._service = service
        self.record = record

    def unregister(self):
        self._service.unregister_listener(self)

    def set_consumer_active(self, active):
        self._service.set_consumer_active(self.record, active)


class SensorManagerService:
    name = "sensors"

    #: Sensor events are batched; we deliver at most this often to keep the
    #: event count tractable while preserving duty-cycle power accounting.
    MAX_DELIVERY_HZ = 1.0

    def __init__(self, sim, monitor, profile, rng):
        self.sim = sim
        self.monitor = monitor
        self.profile = profile
        self.rng = rng
        self.records = []
        self._active = set()
        self.listeners = []
        self.gates = []
        #: Monotonic count of activate/deactivate flips -- lets governors
        #: fingerprint "has anything happened since my last scan?".
        self.transitions = 0

    @property
    def active_count(self):
        """Number of currently honoured registrations. O(1)."""
        return len(self._active)

    # -- app-facing API ------------------------------------------------------

    def register_listener(self, app, sensor_type, listener, rate_hz=5.0):
        app.ipc("sensors", "registerListener")
        record = SensorRecord(self.sim, app.uid, sensor_type, listener, rate_hz)
        self.records.append(record)
        record.acquire_count += 1
        record.mark_held(True)
        self._notify("on_sensor_created", record)
        allowed = all(gate(record) for gate in self.gates)
        self._notify("on_sensor_register", record, allowed)
        if allowed:
            self._activate(record)
        return SensorRegistration(self, record)

    def unregister_listener(self, registration):
        record = registration.record
        record.release_count += 1
        record.mark_held(False)
        self._settle(record)
        self._notify("on_sensor_unregister", record)
        self._deactivate(record)

    def set_consumer_active(self, record, active):
        self._settle(record)
        record.consumer_active = active

    # -- governor ops ------------------------------------------------------------

    def revoke(self, record):
        if record.os_active:
            self._deactivate(record)
            self._notify("on_sensor_revoked", record)

    def restore(self, record):
        if record.app_held and not record.os_active and not record.dead:
            self._activate(record)
            self._notify("on_sensor_restored", record)

    def throttle_rate(self, record, factor):
        """Governor op (DefDroid): reduce delivery rate."""
        record.rate_hz /= factor
        self._refresh_rail(record)

    def kill_app_registrations(self, uid):
        for record in self.records:
            if record.uid == uid and not record.dead:
                record.mark_held(False)
                self._deactivate(record)
                record.dead = True
                self._notify("on_sensor_dead", record)

    def settle_stats(self):
        """Fold elapsed time into every record's counters (profiling)."""
        for record in self.records:
            if record in self._active:
                self._settle(record)
            record.settle()

    # -- internals -------------------------------------------------------------

    def _activate(self, record):
        if record.os_active:
            return
        record.mark_active(True)
        record._seg_since = self.sim.now
        self._active.add(record)
        self.transitions += 1
        self._refresh_rail(record)
        self._schedule_delivery(record)

    def _deactivate(self, record):
        if not record.os_active:
            return
        self._settle(record)
        record.mark_active(False)
        record._seg_since = None
        self._active.discard(record)
        self.transitions += 1
        if record._delivery_timer is not None:
            record._delivery_timer.cancel()
            record._delivery_timer = None
        self.monitor.set_rail(self._rail_name(record), 0.0, ())

    def _rail_name(self, record):
        return "sensor:{}:{}".format(record.sensor_type.value, record.token.id)

    def _refresh_rail(self, record):
        if not record.os_active:
            return
        # Power scales mildly with rate (duty cycle of the sensor hub).
        rate_scale = min(2.0, max(0.25, record.rate_hz / 5.0))
        self.monitor.set_rail(
            self._rail_name(record),
            self.profile.sensor_mw * rate_scale,
            (record.uid,),
        )

    def _schedule_delivery(self, record):
        interval = 1.0 / min(record.rate_hz, self.MAX_DELIVERY_HZ)
        record._delivery_timer = self.sim.schedule(
            interval, lambda: self._deliver(record)
        )

    def _deliver(self, record):
        if record not in self._active:
            return
        self._settle(record)
        record.events_delivered += 1
        reading = SensorReading(
            self.sim.now, record.sensor_type, self.rng.random()
        )
        record.listener(reading)
        self._notify("on_sensor_delivered", record, reading)
        self._schedule_delivery(record)

    def _settle(self, record):
        now = self.sim.now
        if record._seg_since is None:
            return
        elapsed = now - record._seg_since
        if elapsed > 0 and record.consumer_active:
            record.consumer_active_time += elapsed
        record._seg_since = now

    def _notify(self, method, *args):
        for listener in list(self.listeners):
            handler = getattr(listener, method, None)
            if handler is not None:
                handler(*args)
