"""Broadcast delivery: system events that wake interested apps.

Android apps react to CONNECTIVITY_CHANGE, BATTERY_LOW and friends via
registered receivers; delivery briefly wakes the device (the system
holds a wakelock across receiver execution), which is how a frozen app
learns the network came back. The connectivity broadcast is wired to the
network environment automatically; others can be published by scenario
code.
"""


class BroadcastManager:
    """Registers receivers and delivers system broadcasts."""

    #: Actions wired automatically.
    CONNECTIVITY_CHANGE = "connectivity-change"
    BATTERY_LOW = "battery-low"

    #: How long a delivery holds the device awake so receivers can run.
    DELIVERY_WINDOW_S = 2.0

    def __init__(self, sim, suspend):
        self.sim = sim
        self.suspend = suspend
        self._receivers = {}  # action -> list of (uid, callback)
        self.delivered = 0

    def register(self, app, action, callback):
        """Register ``callback(payload)`` for ``action`` broadcasts."""
        app.ipc("broadcasts", "register:{}".format(action))
        entry = (app.uid, callback)
        self._receivers.setdefault(action, []).append(entry)
        return _Registration(self, action, entry)

    def publish(self, action, payload=None):
        """Deliver ``action`` to every receiver, waking the device."""
        receivers = list(self._receivers.get(action, ()))
        if not receivers:
            return 0
        self.suspend.hold_awake(
            "broadcast:{}:{}".format(action, self.delivered),
            self.DELIVERY_WINDOW_S,
        )
        for __, callback in receivers:
            self.delivered += 1
            callback(payload)
        return len(receivers)

    def unregister_app(self, uid):
        for action, entries in self._receivers.items():
            self._receivers[action] = [
                e for e in entries if e[0] != uid
            ]


class _Registration:
    def __init__(self, manager, action, entry):
        self._manager = manager
        self._action = action
        self._entry = entry

    def unregister(self):
        entries = self._manager._receivers.get(self._action, [])
        if self._entry in entries:
            entries.remove(self._entry)
