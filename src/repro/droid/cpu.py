"""CPU power and time accounting.

The CPU has a base rail (deep sleep vs awake-idle; awake power is
attributed to the wakelock holders keeping it awake, or to the system
when the user keeps the screen on) and one ``cpu_active:<uid>`` rail per
app currently computing. Per-uid CPU seconds are accumulated so the
utilization metric (CPU usage / wakelock hold time, Section 2.3) can be
computed per lease term.
"""

from collections import defaultdict


class CpuPowerModel:
    """Recomputes CPU rails from suspend state, wakelocks and compute load."""

    BASE_RAIL = "cpu_base"

    def __init__(self, sim, monitor, profile, dvfs=None):
        self.sim = sim
        self.monitor = monitor
        self.profile = profile
        #: Optional DvfsGovernor (paper §8): when set, active-CPU power
        #: scales with the operating point the current load selects.
        self.dvfs = dvfs
        self.suspended = False
        self._awake_owner_uids = ()
        self._computing = defaultdict(float)  # uid -> cores in use
        self._cpu_time = defaultdict(float)  # uid -> accumulated active s
        self._last_settle = sim.now
        self._recompute()

    # -- time accounting -----------------------------------------------------

    def _settle_times(self):
        now = self.sim.now
        elapsed = now - self._last_settle
        if elapsed > 0 and not self.suspended:
            for uid, cores in self._computing.items():
                if cores > 0:
                    self._cpu_time[uid] += elapsed * min(
                        cores, self.profile.cpu_cores
                    )
        self._last_settle = now

    def cpu_time(self, uid):
        """Accumulated busy CPU seconds for ``uid`` (core-seconds)."""
        self._settle_times()
        return self._cpu_time[uid]

    def cpu_energy_mj(self, uid):
        """Accumulated active-CPU energy attributed to ``uid`` in mJ.

        Under DVFS this diverges from ``cpu_time * cpu_active_mw``; the
        DVFS-aware utilization metric (§8) is built on this.
        """
        self.monitor.settle()
        return self.monitor.ledger.app_rail_mj(
            uid, "cpu_active:{}".format(uid)
        )

    def current_power_scale(self):
        """The active-power multiplier at the current load (1.0 w/o DVFS)."""
        if self.dvfs is None:
            return 1.0
        load = min(1.0, sum(self._computing.values())
                   / self.profile.cpu_cores)
        return self.dvfs.power_scale_for_load(load)

    # -- state changes ---------------------------------------------------------

    def set_suspended(self, suspended):
        if suspended == self.suspended:
            return
        self._settle_times()
        self.suspended = suspended
        self._recompute()

    def set_awake_owners(self, uids):
        """Attribute awake-idle power to these uids (wakelock holders)."""
        self._awake_owner_uids = tuple(uids)
        self._recompute()

    def begin_compute(self, uid, cores=1.0):
        self._settle_times()
        self._computing[uid] += cores
        self._recompute()

    def end_compute(self, uid, cores=1.0):
        self._settle_times()
        self._computing[uid] = max(0.0, self._computing[uid] - cores)
        self._recompute()

    def computing_load(self, uid):
        return self._computing[uid]

    # -- rails --------------------------------------------------------------

    def _recompute(self):
        profile = self.profile
        if self.suspended:
            self.monitor.set_rail(self.BASE_RAIL, profile.cpu_sleep_mw, ())
            for uid in self._computing:
                self.monitor.set_rail("cpu_active:{}".format(uid), 0.0, ())
            return
        self.monitor.set_rail(
            self.BASE_RAIL, profile.cpu_awake_idle_mw, self._awake_owner_uids
        )
        scale = self.current_power_scale()
        for uid, cores in self._computing.items():
            effective = min(cores, profile.cpu_cores)
            self.monitor.set_rail(
                "cpu_active:{}".format(uid),
                profile.cpu_active_mw * effective * scale,
                (uid,),
            )
