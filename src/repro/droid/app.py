"""App framework: base class, lifecycle, and framework helpers.

Apps are written the way the paper's Figure 8 sketches them: a class with
one or more generator *processes* that acquire resources through app-side
descriptors (``WakeLock``, ``LocationRegistration``...), do work
(``yield from self.compute(...)``, ``yield from self.http(...)``), and
(hopefully) release them. The framework also tracks the signals the
generic utility metrics consume: UI updates, user interactions and raised
exceptions (Section 3.3).
"""

import itertools

from repro.sim.events import Timeout

_UIDS = itertools.count(10000)


class AppContext:
    """Everything the framework exposes to an installed app."""

    def __init__(self, phone):
        self.phone = phone
        self.sim = phone.sim
        self.profile = phone.profile
        self.env = phone.env
        self.monitor = phone.monitor
        self.cpu = phone.cpu
        self.ipc = phone.ipc
        self.exceptions = phone.exceptions
        self.power = phone.power
        self.display = phone.display
        self.location = phone.location
        self.sensors = phone.sensors
        self.wifi = phone.wifi
        self.audio = phone.audio
        self.bluetooth = phone.bluetooth
        self.net = phone.net
        self.alarms = phone.alarms
        self.jobs = phone.jobs
        self.broadcasts = phone.broadcasts


class App:
    """Base class for all workload apps.

    Subclasses override :meth:`run` (the main service loop, a generator)
    and optionally :meth:`on_touch` (handle a user interaction) and
    :meth:`on_start` (synchronous setup once installed).
    """

    #: Default metadata, overridden by subclasses.
    app_name = None
    category = "tool"
    #: Apps running a foreground service (music players, fitness trackers)
    #: are partially exempt from Doze, like on real Android.
    foreground_service = False

    def __init__(self, name=None):
        self.uid = next(_UIDS)
        self.name = name or self.app_name or type(self).__name__
        self.ctx = None
        self.rng = None
        self.processes = []
        self.started = False
        self.foreground = False
        self.ui_update_times = []
        self.notification_times = []
        self.interaction_times = []
        self.data_write_times = []
        self.disruptions = []  # (time, description) usability incidents

    # -- lifecycle (called by Phone) ----------------------------------------

    def install(self, ctx, rng):
        self.ctx = ctx
        self.rng = rng

    def start(self):
        """Run setup and spawn the main loop."""
        if self.started:
            raise RuntimeError("app {!r} already started".format(self.name))
        self.started = True
        self.on_start()
        main = self.run()
        if main is not None:
            self.spawn(main, name="{}.main".format(self.name))

    def on_start(self):
        """Synchronous setup hook (onCreate analog)."""

    def run(self):
        """Main background loop; return a generator or None."""
        return None

    def on_touch(self):
        """React to a user interaction (button click, etc.)."""

    def stop(self):
        """Kill all of this app's processes (the Phone cleans services)."""
        for proc in self.processes:
            proc.kill()
        self.processes = []
        self.started = False

    # -- processes ---------------------------------------------------------

    def spawn(self, generator, name=None):
        """Start an app process; frozen immediately if the device sleeps."""
        proc = self.ctx.sim.spawn(
            generator, name=name or "{}.worker".format(self.name)
        )
        self.processes = [p for p in self.processes if p.alive]
        self.processes.append(proc)
        if self.ctx.phone.suspend.suspended:
            proc.pause()
        return proc

    def alive_processes(self):
        self.processes = [p for p in self.processes if p.alive]
        return list(self.processes)

    # -- framework helpers -------------------------------------------------

    def ipc(self, service, method, extra_latency_s=0.0):
        """Record one binder transaction; returns its modelled latency."""
        return self.ctx.ipc.record(self.uid, service, method, extra_latency_s)

    def sleep(self, seconds):
        """Yieldable: sleep for ``seconds`` of (awake) simulated time."""
        return Timeout(seconds)

    def compute(self, cpu_seconds, cores=1.0):
        """Generator: burn CPU for ``cpu_seconds`` of work.

        Wall time scales with the device's speed factor (slow phones take
        longer, as the paper's cross-phone study observes); energy is
        attributed to this app. Must be ``yield from``-ed.
        """
        cpu = self.ctx.cpu
        wall = cpu_seconds / self.ctx.profile.speed_factor
        cpu.begin_compute(self.uid, cores)
        try:
            yield Timeout(wall)
        finally:
            cpu.end_compute(self.uid, cores)

    def http(self, server, payload_s=0.0):
        """Generator: one network request (see ConnectivityService)."""
        return self.ctx.net.request(self, server, payload_s)

    def note_exception(self, exception):
        """Report a caught exception to the libcore handler."""
        self.ctx.exceptions.note(self.uid, exception)

    def set_utility_counter(self, rtype, counter):
        """Register an optional custom utility counter (paper Fig. 6).

        A no-op on systems without LeaseOS installed, so apps using the
        API stay compatible with vanilla Android.
        """
        manager = self.ctx.phone.lease_manager
        if manager is not None:
            self.ipc("lease", "setUtility")
            manager.set_utility(self.uid, rtype, counter)

    # -- utility signals -----------------------------------------------------

    def post_ui_update(self):
        """The app refreshed something the user can see."""
        self.ui_update_times.append(self.ctx.sim.now)

    def post_notification(self, text=""):
        """The app posted a notification: user-visible value even with
        the app in the background (counts toward generic utility)."""
        self.notification_times.append((self.ctx.sim.now, text))
        self.ui_update_times.append(self.ctx.sim.now)

    def user_touch(self):
        """Called by the Phone when the user interacts with this app."""
        self.interaction_times.append(self.ctx.sim.now)
        self.on_touch()

    def note_data_write(self, count=1):
        """The app persisted useful data (tracking points, messages...)."""
        self.data_write_times.extend([self.ctx.sim.now] * count)

    def record_disruption(self, description):
        """The app's core function was visibly interrupted (usability)."""
        self.disruptions.append((self.ctx.sim.now, description))

    def ui_updates_in(self, start, end):
        return sum(1 for t in self.ui_update_times if start <= t < end)

    def interactions_in(self, start, end):
        return sum(1 for t in self.interaction_times if start <= t < end)

    def data_writes_in(self, start, end):
        return sum(1 for t in self.data_write_times if start <= t < end)

    def __repr__(self):
        return "{}(uid={}, {!r})".format(type(self).__name__, self.uid, self.name)
