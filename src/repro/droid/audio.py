"""AudioService: audio sessions (the Facebook-iOS-style leak target).

A held session keeps the audio pipeline powered. Utilization is the
fraction of hold time that frames were actually being played.
"""

from repro.droid.resources import KernelObject, ResourceType


class AudioSessionRecord(KernelObject):
    def __init__(self, sim, uid, name):
        super().__init__(sim, uid, ResourceType.AUDIO, name)
        self.playback_time = 0.0
        self._playing_since = None

    def settle_playback(self, now):
        if self._playing_since is not None:
            self.playback_time += now - self._playing_since
            self._playing_since = now


class AudioSession:
    """App-side descriptor for one audio session."""

    def __init__(self, service, record, app):
        self._service = service
        self.record = record
        self._app = app

    def start_playback(self):
        self._app.ipc("audio", "startPlayback")
        self._service.start_playback(self.record)

    def stop_playback(self):
        self._app.ipc("audio", "stopPlayback")
        self._service.stop_playback(self.record)

    def close(self):
        self._app.ipc("audio", "closeSession")
        self._service.close(self.record)


class AudioService:
    name = "audio"

    def __init__(self, sim, monitor, profile):
        self.sim = sim
        self.monitor = monitor
        self.profile = profile
        self.records = []
        self.listeners = []
        self.gates = []

    def open_session(self, app, name="audio-session"):
        app.ipc("audio", "openSession")
        record = AudioSessionRecord(self.sim, app.uid, name)
        self.records.append(record)
        record.acquire_count += 1
        record.mark_held(True)
        allowed = all(gate(record) for gate in self.gates)
        self._notify("on_audio_open", record, allowed)
        if allowed:
            record.mark_active(True)
        return AudioSession(self, record, app)

    def start_playback(self, record):
        if record.os_active and record._playing_since is None:
            record._playing_since = self.sim.now
            self._refresh_rail(record)

    def stop_playback(self, record):
        record.settle_playback(self.sim.now)
        record._playing_since = None
        self._refresh_rail(record)

    def close(self, record):
        record.settle_playback(self.sim.now)
        record._playing_since = None
        record.release_count += 1
        record.mark_held(False)
        record.mark_active(False)
        record.dead = True
        self._refresh_rail(record)
        self._notify("on_audio_close", record)

    def revoke(self, record):
        if record.os_active:
            record.settle_playback(self.sim.now)
            record._playing_since = None
            record.mark_active(False)
            self._refresh_rail(record)
            self._notify("on_audio_revoked", record)

    def restore(self, record):
        if record.app_held and not record.os_active and not record.dead:
            record.mark_active(True)
            self._refresh_rail(record)
            self._notify("on_audio_restored", record)

    def _rail_name(self, record):
        return "audio:{}".format(record.token.id)

    def _refresh_rail(self, record):
        playing = record.os_active and record._playing_since is not None
        power = self.profile.audio_mw if playing else 0.0
        self.monitor.set_rail(self._rail_name(record), power, (record.uid,))

    def _notify(self, method, *args):
        for listener in list(self.listeners):
            handler = getattr(listener, method, None)
            if handler is not None:
                handler(*args)
