"""AlarmManager: timed callbacks that may wake the device.

Background apps (mail pollers, scanners) schedule wakeup alarms; when one
fires while the device is suspended the device briefly wakes (the handling
window) so the app can run -- usually it immediately takes a wakelock.
Doze interposes on alarms through the ``policy`` hook to defer background
wakeups to maintenance windows.
"""

import itertools


class Alarm:
    _ids = itertools.count(1)

    __slots__ = ("id", "uid", "callback", "wakeup", "cancelled", "interval")

    def __init__(self, uid, callback, wakeup, interval=None):
        self.id = next(Alarm._ids)
        self.uid = uid
        self.callback = callback
        self.wakeup = wakeup
        self.cancelled = False
        self.interval = interval  # set for repeating alarms

    def cancel(self):
        self.cancelled = True

    def __repr__(self):
        kind = "wakeup" if self.wakeup else "non-wakeup"
        return "Alarm#{}(uid={}, {})".format(self.id, self.uid, kind)


class AlarmManager:
    """Schedules app alarms on the simulator with an interception hook."""

    #: How long a firing wakeup alarm holds the device awake so the app can
    #: start handling it (apps then keep themselves awake with wakelocks).
    HANDLING_WINDOW_S = 1.0

    def __init__(self, sim, suspend):
        self.sim = sim
        self.suspend = suspend
        #: Optional ``policy.intercept_alarm(alarm) -> bool``; returning
        #: True means the policy swallowed the firing (e.g. Doze deferring
        #: it to a maintenance window and re-delivering later via
        #: :meth:`deliver_now`).
        self.policy = None
        self.fired_count = 0

    def set(self, uid, delay, callback, wakeup=True):
        """One-shot alarm after ``delay`` seconds. Returns the Alarm."""
        alarm = Alarm(uid, callback, wakeup)
        self.sim.schedule(delay, lambda: self._fire(alarm))
        return alarm

    def set_repeating(self, uid, interval, callback, wakeup=True):
        """Repeating alarm every ``interval`` seconds. Returns the Alarm."""
        if interval <= 0:
            raise ValueError("alarm interval must be positive")
        alarm = Alarm(uid, callback, wakeup, interval=interval)
        self.sim.schedule(interval, lambda: self._fire(alarm))
        return alarm

    def _fire(self, alarm):
        if alarm.cancelled:
            return
        if alarm.interval is not None:
            # Re-arm first so a policy deferral cannot kill the series.
            self.sim.schedule(alarm.interval, lambda: self._fire(alarm))
        if self.policy is not None and self.policy.intercept_alarm(alarm):
            return
        self.deliver_now(alarm)

    def deliver_now(self, alarm):
        """Deliver an alarm immediately (also used by Doze maintenance)."""
        if alarm.cancelled:
            return
        self.fired_count += 1
        if alarm.wakeup:
            self.suspend.hold_awake(
                "alarm:{}".format(alarm.id), self.HANDLING_WINDOW_S
            )
        alarm.callback()
