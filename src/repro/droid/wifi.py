"""WifiService: high-performance Wi-Fi locks.

A held Wi-Fi lock keeps the radio out of power-save (a small constant
draw); the ConnectBot Wi-Fi case in Table 5 holds one regardless of
whether the active network is even Wi-Fi. Utilization for a Wi-Fi lock is
the fraction of hold time the app actually spends transferring.
"""

from repro.droid.resources import KernelObject, ResourceType


class WifiLockRecord(KernelObject):
    def __init__(self, sim, uid, name):
        super().__init__(sim, uid, ResourceType.WIFI, name)
        self.transfer_time = 0.0  # seconds transferring while held


class WifiLock:
    """App-side descriptor, mirroring ``WifiManager.WifiLock``."""

    def __init__(self, service, record, app):
        self._service = service
        self._record = record
        self._app = app
        self._held = False

    def acquire(self):
        self._app.ipc("wifi", "acquireLock")
        if not self._held:
            self._held = True
            self._service.acquire(self._record)

    def release(self):
        if not self._held:
            raise RuntimeError("wifi lock released while not held")
        self._app.ipc("wifi", "releaseLock")
        self._held = False
        self._service.release(self._record)

    @property
    def held(self):
        return self._held


class WifiService:
    name = "wifi"

    RAIL = "wifi_lock"

    def __init__(self, sim, monitor, profile, env):
        self.sim = sim
        self.monitor = monitor
        self.profile = profile
        self.env = env
        self.records = []
        self._honoured = set()
        self.listeners = []
        self.gates = []
        #: Monotonic count of honour/unhonour flips -- lets governors
        #: fingerprint "has anything happened since my last scan?".
        self.transitions = 0

    @property
    def active_count(self):
        """Number of currently honoured locks. O(1)."""
        return len(self._honoured)

    def new_lock(self, app, name="wifilock"):
        app.ipc("wifi", "createWifiLock")
        record = WifiLockRecord(self.sim, app.uid, name)
        self.records.append(record)
        self._notify("on_wifilock_created", record)
        return WifiLock(self, record, app)

    def acquire(self, record):
        record.acquire_count += 1
        record.mark_held(True)
        allowed = all(gate(record) for gate in self.gates)
        self._notify("on_wifilock_acquire", record, allowed)
        if allowed:
            self._activate(record)

    def release(self, record):
        record.release_count += 1
        record.mark_held(False)
        self._notify("on_wifilock_release", record)
        self._deactivate(record)

    def revoke(self, record):
        if record.os_active:
            self._deactivate(record)
            self._notify("on_wifilock_revoked", record)

    def restore(self, record):
        if record.app_held and not record.os_active and not record.dead:
            self._activate(record)
            self._notify("on_wifilock_restored", record)

    def kill_app_locks(self, uid):
        for record in self.records:
            if record.uid == uid and not record.dead:
                record.mark_held(False)
                self._deactivate(record)
                record.dead = True
                self._notify("on_wifilock_dead", record)

    def note_transfer(self, uid, duration):
        """Connectivity credits transfer time to the uid's held locks."""
        for record in self._honoured:
            if record.uid == uid:
                record.transfer_time += duration

    def _activate(self, record):
        if record.os_active:
            return
        record.mark_active(True)
        self._honoured.add(record)
        self.transitions += 1
        self._refresh_rail()

    def _deactivate(self, record):
        if not record.os_active:
            return
        record.mark_active(False)
        self._honoured.discard(record)
        self.transitions += 1
        self._refresh_rail()

    def _refresh_rail(self):
        owners = tuple(sorted({r.uid for r in self._honoured}))
        power = self.profile.wifi_lock_mw if owners else 0.0
        self.monitor.set_rail(self.RAIL, power, owners)

    def _notify(self, method, *args):
        for listener in list(self.listeners):
            handler = getattr(listener, method, None)
            if handler is not None:
                handler(*args)
