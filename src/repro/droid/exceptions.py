"""App exception tracking -- the libcore ``ExceptionNoteHandler`` analog.

The paper's generic low-utility signal for wakelocks is "the frequency of
severe exceptions raised in apps" (Section 3.3); implementing it required
a libcore hook (Section 6). Here app framework helpers note every raised
simulated exception with this handler, and the lease manager reads the
count over each term window.

Exception classes for simulated failures also live here so app code can
catch them the way real apps catch ``IOException``.
"""

import bisect
from collections import defaultdict


class AppException(Exception):
    """Base for all simulated in-app exceptions."""

    severe = True


class NetworkException(AppException):
    """Base for network failures."""


class NoRouteException(NetworkException):
    """No connectivity at all (airplane mode, dropped network)."""


class ServerErrorException(NetworkException):
    """The server answered, but with an error status."""


class SocketTimeoutException(NetworkException):
    """The connection attempt or transfer timed out."""


class AuthException(AppException):
    """Authentication with a remote service failed."""


class ExceptionNoteHandler:
    """Global handler counting severe exceptions per app over time.

    Mirrors the paper's libcore ``ExceptionNoteHandler`` (Section 6): set
    once during runtime init, notified on every throw, queried by the
    lease manager for per-term windows.
    """

    def __init__(self, sim):
        self.sim = sim
        self._times = defaultdict(list)  # uid -> sorted throw timestamps

    def note(self, uid, exception):
        """Record that ``uid`` raised ``exception`` now."""
        if getattr(exception, "severe", True):
            self._times[uid].append(self.sim.now)

    def count_in_window(self, uid, start, end):
        """Number of severe exceptions by ``uid`` in ``[start, end)``."""
        times = self._times[uid]
        lo = bisect.bisect_left(times, start)
        hi = bisect.bisect_left(times, end)
        return hi - lo

    def total(self, uid):
        return len(self._times[uid])
