"""DisplayService: screen state and its power rail.

The screen is on when the user turned it on, or when any honoured
screen-bright wakelock exists. When only wakelocks hold it on, the draw is
attributed to the holding apps (this is how the ConnectBot / Standup Timer
screen-LHB cases show up as per-app power in Table 5).
"""

import enum


class ScreenState(enum.Enum):
    OFF = "off"
    DIM = "dim"
    ON = "on"


class DisplayService:
    name = "display"

    RAIL = "screen"

    def __init__(self, sim, monitor, profile, suspend):
        self.sim = sim
        self.monitor = monitor
        self.profile = profile
        self.suspend = suspend
        self.user_on = False
        self.dimmed = False
        self._screen_locks = []
        self.state = ScreenState.OFF
        self.last_interaction = -float("inf")
        self._recompute()

    # -- inputs ---------------------------------------------------------------

    def set_user_screen(self, on):
        self.user_on = on
        if on:
            self.dimmed = False
        self._recompute()

    def set_screen_wakelocks(self, records):
        self._screen_locks = list(records)
        self._recompute()

    def set_dimmed(self, dimmed):
        """Governor op (DefDroid dims long-held screens)."""
        self.dimmed = dimmed
        self._recompute()

    def note_interaction(self):
        self.last_interaction = self.sim.now

    # -- state ---------------------------------------------------------------

    def _recompute(self):
        if self.user_on or self._screen_locks:
            self.state = ScreenState.DIM if self.dimmed else ScreenState.ON
        else:
            self.state = ScreenState.OFF

        if self.state is ScreenState.OFF:
            self.monitor.set_rail(self.RAIL, 0.0, ())
            self.suspend.remove_reason("screen")
            return
        power = (
            self.profile.screen_dim_mw
            if self.state is ScreenState.DIM
            else self.profile.screen_on_mw
        )
        # Attribute to wakelock holders only when the user is not the one
        # keeping the screen on.
        owners = ()
        if not self.user_on and self._screen_locks:
            owners = tuple(sorted({r.uid for r in self._screen_locks}))
        self.monitor.set_rail(self.RAIL, power, owners)
        self.suspend.add_reason("screen")

    @property
    def screen_on(self):
        return self.state is not ScreenState.OFF
