"""PowerManagerService: wakelocks (partial and screen-bright).

The service keeps the set of *honoured* kernel objects; any honoured
partial wakelock keeps the CPU awake, any honoured screen wakelock keeps
the display on. Governors interpose in three ways:

- ``gates``: predicates consulted on acquire; if any denies, the service
  *pretends* success to the app (the descriptor works, nothing happens);
- ``revoke(record)`` / ``restore(record)``: temporarily stop/resume
  honouring an object while the app still thinks it holds it;
- ``listeners``: notified of create/acquire/release/death for accounting.
"""

import enum

from repro.droid.resources import KernelObject, ResourceType


class WakeLockLevel(enum.Enum):
    PARTIAL = "partial"  # CPU stays awake
    SCREEN_BRIGHT = "screen_bright"  # screen and CPU stay on


class WakeLockRecord(KernelObject):
    """Kernel-side record of one wakelock."""

    def __init__(self, sim, uid, name, level):
        rtype = (
            ResourceType.SCREEN
            if level is WakeLockLevel.SCREEN_BRIGHT
            else ResourceType.WAKELOCK
        )
        super().__init__(sim, uid, rtype, name)
        self.level = level
        self.interactions = 0  # user touches while a screen lock is honoured
        self.pretended_acquires = 0


class WakeLock:
    """App-side descriptor bound 1:1 to a :class:`WakeLockRecord`.

    Mirrors ``android.os.PowerManager.WakeLock``: ``acquire`` and
    ``release`` are IPCs into the service. Reference-counted like the real
    thing: nested acquires need as many releases.
    """

    def __init__(self, service, record, app):
        self._service = service
        self._record = record
        self._app = app
        self._ref_count = 0
        self._timeout_timer = None

    def acquire(self, timeout_s=None):
        """Acquire the lock; with ``timeout_s`` it self-releases later,
        like ``WakeLock.acquire(long timeout)`` on Android -- the API the
        well-behaved apps use to bound their own mistakes."""
        self._app.ipc("power", "acquire")
        self._ref_count += 1
        if self._ref_count == 1:
            self._service.acquire(self._record)
        # Any acquire supersedes a previously armed timeout: a plain
        # acquire must not be killed by a stale timer.
        if self._timeout_timer is not None:
            self._timeout_timer.cancel()
            self._timeout_timer = None
        if timeout_s is not None:
            self._timeout_timer = self._service.sim.schedule(
                timeout_s, self._timeout_release
            )

    def _timeout_release(self):
        self._timeout_timer = None
        if self._ref_count > 0:
            self.release()

    def release(self):
        if self._ref_count == 0:
            raise RuntimeError(
                "wakelock {!r} released more times than acquired".format(
                    self._record.name
                )
            )
        self._app.ipc("power", "release")
        self._ref_count -= 1
        if self._ref_count == 0:
            if self._timeout_timer is not None:
                self._timeout_timer.cancel()
                self._timeout_timer = None
            self._service.release(self._record)

    @property
    def held(self):
        """The app's view: does it believe it holds the lock?"""
        return self._ref_count > 0

    def __repr__(self):
        return "WakeLock({!r}, refs={})".format(self._record.name, self._ref_count)


class PowerManagerService:
    """Owns wakelock kernel objects and the device awake state."""

    name = "power"

    def __init__(self, sim, cpu, suspend, display):
        self.sim = sim
        self.cpu = cpu
        self.suspend = suspend
        self.display = display
        self.records = []
        self._honoured = set()  # records currently os_active
        self.listeners = []
        self.gates = []  # callables (record) -> bool allow
        #: Monotonic count of honour/unhonour flips -- lets governors
        #: fingerprint "has anything happened since my last scan?".
        self.transitions = 0

    # -- app-facing API ------------------------------------------------------

    def new_wakelock(self, app, name, level=WakeLockLevel.PARTIAL):
        app.ipc("power", "newWakeLock")
        record = WakeLockRecord(self.sim, app.uid, name, level)
        self.records.append(record)
        self._notify("on_wakelock_created", record)
        return WakeLock(self, record, app)

    # -- kernel-side operations ------------------------------------------------

    def acquire(self, record):
        if record.dead:
            raise RuntimeError("acquire on dead wakelock {!r}".format(record.name))
        record.acquire_count += 1
        record.mark_held(True)
        allowed = all(gate(record) for gate in self.gates)
        self._notify("on_wakelock_acquire", record, allowed)
        if allowed:
            self._activate(record)
        else:
            record.pretended_acquires += 1

    def release(self, record):
        record.release_count += 1
        record.mark_held(False)
        self._notify("on_wakelock_release", record)
        self._deactivate(record)

    def revoke(self, record):
        """Governor op: stop honouring the lock; the app is unaware."""
        if record.os_active:
            self._deactivate(record)
            self._notify("on_wakelock_revoked", record)

    def restore(self, record):
        """Governor op: resume honouring a revoked, still-held lock."""
        if record.app_held and not record.os_active and not record.dead:
            self._activate(record)
            self._notify("on_wakelock_restored", record)

    def kill_app_locks(self, uid):
        """App death: clean all its kernel objects (Section 4.3)."""
        for record in self.records:
            if record.uid == uid and not record.dead:
                record.mark_held(False)
                self._deactivate(record)
                record.dead = True
                self._notify("on_wakelock_dead", record)

    # -- internals ----------------------------------------------------------

    def _activate(self, record):
        if record.os_active:
            return
        record.mark_active(True)
        self._honoured.add(record)
        self.transitions += 1
        self._update_device_state()

    def _deactivate(self, record):
        if not record.os_active:
            return
        record.mark_active(False)
        self._honoured.discard(record)
        self.transitions += 1
        self._update_device_state()

    def _update_device_state(self):
        cpu_holders = sorted(
            {r.uid for r in self._honoured}
        )  # any honoured lock keeps the CPU awake
        if cpu_holders:
            self.suspend.add_reason("wakelock")
        else:
            self.suspend.remove_reason("wakelock")
        self.cpu.set_awake_owners(cpu_holders)
        screen_records = [
            r for r in self._honoured if r.level is WakeLockLevel.SCREEN_BRIGHT
        ]
        self.display.set_screen_wakelocks(screen_records)

    def honoured_records(self):
        return frozenset(self._honoured)

    @property
    def active_count(self):
        """Number of currently honoured records. O(1)."""
        return len(self._honoured)

    def settle_stats(self):
        """Fold elapsed time into every record's counters (profiling)."""
        for record in self.records:
            record.settle()

    def note_interaction(self):
        """Touches credit utilization of honoured screen locks."""
        for record in self._honoured:
            if record.level is WakeLockLevel.SCREEN_BRIGHT:
                record.interactions += 1

    def _notify(self, method, *args):
        for listener in list(self.listeners):
            handler = getattr(listener, method, None)
            if handler is not None:
                handler(*args)
