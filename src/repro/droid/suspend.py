"""Device suspend (deep sleep) control.

The device stays awake while any *awake reason* is present: the screen is
on, a partial wakelock is held and honoured, a wakeup alarm is being
handled, or the user touched the phone moments ago. When the last reason
disappears the device suspends: the CPU base rail drops to deep-sleep
power and every app process is frozen (paper Section 4.6 -- revoking the
last wakelock pauses execution, which resumes seamlessly on wake).
"""


class SuspendController:
    """Tracks awake reasons and drives CPU suspend + process freezing."""

    def __init__(self, sim, cpu):
        self.sim = sim
        self.cpu = cpu
        self._reasons = set()
        self._listeners = []  # callback(suspended: bool)
        self._process_provider = None  # callable -> iterable of Process
        self.suspended = False
        self.suspend_count = 0
        self._suspended_time = 0.0
        self._suspended_since = None

    def set_process_provider(self, provider):
        """``provider()`` must yield the app processes to freeze/thaw."""
        self._process_provider = provider

    def on_transition(self, listener):
        """Register ``listener(suspended)`` for suspend/wake transitions."""
        self._listeners.append(listener)

    # -- reasons -------------------------------------------------------------

    def add_reason(self, tag):
        """Hold the device awake for ``tag`` (idempotent per tag)."""
        self._reasons.add(tag)
        self._reevaluate()

    def remove_reason(self, tag):
        self._reasons.discard(tag)
        self._reevaluate()

    def hold_awake(self, tag, duration):
        """Add a reason that removes itself after ``duration`` seconds."""
        self.add_reason(tag)
        self.sim.schedule(duration, lambda: self.remove_reason(tag))

    @property
    def awake(self):
        return not self.suspended

    @property
    def reasons(self):
        return frozenset(self._reasons)

    def suspended_time(self):
        """Total seconds spent suspended so far."""
        total = self._suspended_time
        if self._suspended_since is not None:
            total += self.sim.now - self._suspended_since
        return total

    # -- transitions -----------------------------------------------------------

    def _reevaluate(self):
        should_suspend = not self._reasons
        if should_suspend == self.suspended:
            return
        self.suspended = should_suspend
        if should_suspend:
            self.suspend_count += 1
            self._suspended_since = self.sim.now
            self.cpu.set_suspended(True)
            self._freeze(True)
        else:
            if self._suspended_since is not None:
                self._suspended_time += self.sim.now - self._suspended_since
                self._suspended_since = None
            self.cpu.set_suspended(False)
            self._freeze(False)
        for listener in list(self._listeners):
            listener(self.suspended)

    def _freeze(self, freeze):
        if self._process_provider is None:
            return
        for proc in self._process_provider():
            if freeze:
                proc.pause()
            else:
                proc.resume()
