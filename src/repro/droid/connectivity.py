"""ConnectivityService: simulated network requests.

Apps perform requests from inside their processes with
``yield from ctx.net.request(app, "server")``. The call occupies the
radio (a per-app power rail) for the outcome's duration, then either
returns normally or raises one of the :mod:`repro.droid.exceptions`
network exceptions (which are noted with the ExceptionNoteHandler -- the
paper's generic low-utility signal).

If the device suspends mid-request (e.g. LeaseOS deferred the app's last
wakelock), the transfer is marked interrupted and raises a socket timeout
when the app resumes -- exactly the Section 4.6 semantics ("an I/O
exception due to timeout might occur ... the app is already required to
handle such exception").
"""

import itertools

from collections import defaultdict

from repro.droid.exceptions import (
    NoRouteException,
    ServerErrorException,
    SocketTimeoutException,
)
from repro.sim.events import Timeout


class _Transfer:
    _ids = itertools.count(1)

    __slots__ = ("id", "uid", "interrupted")

    def __init__(self, uid):
        self.id = next(_Transfer._ids)
        self.uid = uid
        self.interrupted = False


class ConnectivityService:
    name = "connectivity"

    def __init__(self, sim, monitor, profile, env, exceptions, suspend):
        self.sim = sim
        self.monitor = monitor
        self.profile = profile
        self.env = env
        self.exceptions = exceptions
        self._active = defaultdict(set)  # uid -> set of transfers
        self.request_count = 0
        self.wifi_service = None  # wired by Phone for lock accounting
        #: Optional ``restrictor(uid) -> bool``; False makes requests from
        #: that uid fail as if there were no network (Doze's background
        #: network deferral).
        self.restrictor = None
        suspend.on_transition(self._on_suspend)

    def is_connected(self):
        return self.env.network.connected

    def request(self, app, server, payload_s=0.0):
        """Generator: perform one request; must be ``yield from``-ed.

        Returns the :class:`~repro.env.network.RequestOutcome` on success;
        raises a network exception otherwise.
        """
        app.ipc("connectivity", "request")
        self.request_count += 1
        outcome = self.env.network.request_outcome(
            server, app.rng, payload_s
        )
        if self.restrictor is not None and not self.restrictor(app.uid):
            from repro.env.network import RequestOutcome
            outcome = RequestOutcome("no_network", 0.05)
        transfer = _Transfer(app.uid)
        started = self.sim.now
        self._begin(transfer)
        try:
            yield Timeout(outcome.duration)
        finally:
            self._end(transfer)
            duration = self.sim.now - started
            if self.wifi_service is not None and duration > 0:
                self.wifi_service.note_transfer(app.uid, duration)
        if transfer.interrupted:
            return self._fail(app, SocketTimeoutException(
                "transfer interrupted by device suspend"))
        if outcome.status == "ok":
            return outcome
        if outcome.status == "no_network":
            return self._fail(app, NoRouteException("no connectivity"))
        if outcome.status == "error":
            return self._fail(app, ServerErrorException(
                "server {} returned an error".format(server)))
        return self._fail(app, SocketTimeoutException(
            "request to {} timed out".format(server)))

    def _fail(self, app, exception):
        self.exceptions.note(app.uid, exception)
        raise exception

    # -- radio power -----------------------------------------------------------

    def _rail_name(self, uid):
        return "net:{}".format(uid)

    def _transfer_power(self):
        if self.env.network.kind == "wifi":
            return self.profile.wifi_active_mw
        return self.profile.radio_active_mw

    def _begin(self, transfer):
        transfers = self._active[transfer.uid]
        transfers.add(transfer)
        self._refresh_rail(transfer.uid)

    def _end(self, transfer):
        transfers = self._active[transfer.uid]
        transfers.discard(transfer)
        self._refresh_rail(transfer.uid)

    def _refresh_rail(self, uid):
        active = any(
            not t.interrupted for t in self._active[uid]
        )
        power = self._transfer_power() if active else 0.0
        self.monitor.set_rail(self._rail_name(uid), power, (uid,))

    def _on_suspend(self, suspended):
        if not suspended:
            return
        # The radio stops; in-flight app transfers will time out on resume.
        for uid, transfers in self._active.items():
            changed = False
            for transfer in transfers:
                if not transfer.interrupted:
                    transfer.interrupted = True
                    changed = True
            if changed:
                self._refresh_rail(uid)
