"""The Android-like OS substrate.

This package stands in for the Android 7.1.2 framework the paper modifies:
system services own *kernel objects* keyed by binder tokens, apps hold
address-space-local descriptors that map 1:1 onto those kernel objects,
and resource governors (LeaseOS proxies or the baseline mitigations)
interpose on the kernel objects without ever touching the app-side
descriptors -- the property that makes LeaseOS app-oblivious (Section 4.2).

Entry point: :class:`repro.droid.phone.Phone`, a facade that wires the
simulator, device hardware, environment, services, apps and an optional
mitigation into one runnable phone.
"""

from repro.droid.app import App, AppContext
from repro.droid.phone import Phone
from repro.droid.resources import IBinder, ResourceType

__all__ = ["App", "AppContext", "Phone", "IBinder", "ResourceType"]
