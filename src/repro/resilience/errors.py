"""Structured failures raised (and recorded) by the supervision layer.

Every exception here is data-first: the fields the failure manifest
needs (label, attempt, timings, exit codes) live on the instance, and
``str()`` renders a one-line human summary from them. Supervised
workers never leak a raw stack into the dispatch loop -- they surface
as exactly one of these.
"""


class SupervisionError(Exception):
    """Base class for failures produced by the supervision layer."""


class JobTimeout(SupervisionError):
    """A job's wall-clock deadline fired; the worker was killed."""

    def __init__(self, label, attempt, timeout_s, elapsed_s):
        self.label = label
        self.attempt = attempt
        self.timeout_s = timeout_s
        self.elapsed_s = elapsed_s
        super().__init__(
            "job {!r} exceeded its {:.1f}s deadline on attempt {} "
            "(ran {:.1f}s); worker killed".format(
                label, timeout_s, attempt, elapsed_s))


class WorkerCrash(SupervisionError):
    """A worker process died (segfault, os._exit, OOM kill, ...)."""

    def __init__(self, label, attempt, exitcode):
        self.label = label
        self.attempt = attempt
        self.exitcode = exitcode
        super().__init__(
            "worker for job {!r} died with exit code {} on attempt {}"
            .format(label, exitcode, attempt))


class InjectedFault(SupervisionError):
    """A harness-level fault hook made this attempt fail on purpose."""

    def __init__(self, label, attempt):
        self.label = label
        self.attempt = attempt
        super().__init__(
            "injected harness fault for job {!r}, attempt {}".format(
                label, attempt))


class JobQuarantined(SupervisionError):
    """A job exhausted its attempts. Raised only under ``fail_fast``;
    in degrade mode the job lands in the failure manifest instead."""

    def __init__(self, label, attempts, last_error):
        self.label = label
        self.attempts = attempts
        self.last_error = last_error
        super().__init__(
            "job {!r} quarantined after {} attempt(s); last error: {}"
            .format(label, attempts, last_error))


class RunInterrupted(SupervisionError):
    """Ctrl-C / SIGTERM mid-run: workers reaped, state flushed.

    The CLI converts this to exit code 130 (128 + SIGINT), after the
    supervisor has terminated live workers and everything already
    completed has been checkpointed/cached.
    """

    exit_code = 130

    def __init__(self, completed, outstanding):
        self.completed = completed
        self.outstanding = outstanding
        super().__init__(
            "run interrupted: {} job(s) completed and flushed, {} "
            "outstanding".format(completed, outstanding))
