"""Supervised execution: deadlines, retries, quarantine, degradation.

The dispatch-path counterpart of the in-sim fault layer (PR 3): every
grid job and fleet shard can run under a :class:`Supervisor` that
kills hung workers at a wall-clock deadline, requeues jobs whose
workers crash, retries with seeded deterministic backoff, quarantines
poison jobs after N attempts, and lets the run complete with partial
results plus a machine-readable :class:`FailureManifest`. See
docs/resilience.md for semantics and the determinism guarantees under
retry.
"""

from repro.resilience.errors import (
    InjectedFault,
    JobQuarantined,
    JobTimeout,
    RunInterrupted,
    SupervisionError,
    WorkerCrash,
)
from repro.resilience.hooks import HarnessFaults
from repro.resilience.manifest import (
    AttemptRecord,
    FailureManifest,
    FailureRecord,
)
from repro.resilience.policy import RetryPolicy
from repro.resilience.supervisor import (
    Supervisor,
    SupervisorStats,
    sigterm_as_interrupt,
)

__all__ = [
    "Supervisor",
    "SupervisorStats",
    "RetryPolicy",
    "HarnessFaults",
    "FailureManifest",
    "FailureRecord",
    "AttemptRecord",
    "SupervisionError",
    "JobTimeout",
    "WorkerCrash",
    "JobQuarantined",
    "InjectedFault",
    "RunInterrupted",
    "sigterm_as_interrupt",
]
