"""Seeded, deterministic retry policy: bounded backoff, derived jitter.

Retries must not introduce nondeterminism: a rerun of the same run must
make the same scheduling decisions. The jitter for ``(job, attempt)``
is therefore *derived* -- ``sha256(seed:job_key:attempt)`` mapped to
[0, 1) -- not drawn from a shared RNG whose state would depend on the
order failures happened to arrive in.
"""

import hashlib

from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter.

    ``max_attempts`` counts the first try: ``max_attempts=3`` means one
    try plus up to two retries. ``delay_s(job_key, attempt)`` is the
    pause *before* ``attempt`` (2-based; attempt 1 never waits) --
    ``base_delay_s * 2^(attempt-2)``, capped at ``max_delay_s``, then
    stretched by up to ``jitter`` (a fraction) using the derived unit.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.1
    max_delay_s: float = 30.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be >= 0")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter must be in [0, 1]")

    def jitter_unit(self, job_key, attempt):
        """The derived [0, 1) jitter unit for ``(job_key, attempt)``."""
        token = "{}:{}:{}".format(self.seed, job_key, attempt)
        digest = hashlib.sha256(token.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") / float(2 ** 64)

    def delay_s(self, job_key, attempt):
        """Seconds to wait before retry ``attempt`` (>= 2)."""
        if attempt <= 1:
            return 0.0
        base = min(self.max_delay_s,
                   self.base_delay_s * (2.0 ** (attempt - 2)))
        return base * (1.0 + self.jitter * self.jitter_unit(job_key,
                                                            attempt))

    def schedule(self, job_key):
        """Every retry delay this policy would grant ``job_key``."""
        return tuple(self.delay_s(job_key, attempt)
                     for attempt in range(2, self.max_attempts + 1))
