"""The supervisor: deadlines, retries, quarantine, graceful degradation.

Wraps every dispatched grid/fleet job in a supervised attempt loop:

- **watchdog** -- each attempt runs in its own worker process with a
  wall-clock deadline; a hung worker is killed and the attempt becomes
  a structured :class:`~repro.resilience.errors.JobTimeout`;
- **crash isolation** -- a worker that dies (segfault, ``os._exit``,
  OOM kill) takes down only its own job; the attempt becomes a
  :class:`~repro.resilience.errors.WorkerCrash` and the job is requeued
  on a fresh worker;
- **deterministic retries** -- failed attempts back off per the seeded
  :class:`~repro.resilience.policy.RetryPolicy` (jitter derived from
  the job label, never from shared RNG state), so a rerun makes the
  same scheduling decisions;
- **quarantine + degradation** -- a job that exhausts its attempts is
  quarantined: recorded in the :class:`~repro.resilience.manifest.
  FailureManifest` with its spec, seed and full attempt history, while
  the rest of the run completes. ``fail_fast=True`` restores
  stop-on-first-quarantine semantics;
- **runaway budgets** -- an optional :class:`~repro.sim.engine.
  RunBudget` is armed ambiently inside each worker, so a simulation
  that would spin forever aborts with kernel diagnostics instead.

When worker processes are unavailable (sandboxes without
``/dev/shm``, restricted seccomp profiles) the supervisor degrades to
in-process serial attempts: crash/hang harness faults are then
*synthesised* as their structured failures -- which keeps the whole
retry/quarantine state machine testable in any environment -- and the
wall-clock deadline is enforced by fusing it into the ambient
:class:`RunBudget` (a runaway simulation still gets cut; a job stuck
outside the sim kernel cannot be preempted without a process).
"""

import sys
import time
import traceback

from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, fields

from repro.resilience.errors import (
    InjectedFault,
    JobQuarantined,
    JobTimeout,
    RunInterrupted,
    WorkerCrash,
)
from repro.resilience.hooks import HarnessFaults, apply_in_worker
from repro.resilience.manifest import (
    AttemptRecord,
    FailureManifest,
    FailureRecord,
    seed_of,
)
from repro.resilience.policy import RetryPolicy
from repro.sim.engine import RunBudget, set_ambient_budget

#: Grace period between SIGTERM and SIGKILL when reaping a worker.
_KILL_GRACE_S = 2.0

#: Upper bound on one event-loop wait so deadlines are polled timely.
_MAX_WAIT_S = 0.2


def _worker_main(conn, spec, label, attempt, budget_limits, faults_json):
    """Entry point of one supervised attempt in a worker process.

    Applies any matching harness fault first (which may never return),
    arms the ambient runaway budget, runs the spec, and ships either
    ``("ok", result)`` or ``("error", type, message, traceback)`` back
    through the pipe. A crash before the send is what the parent
    observes as EOF + a dead process.
    """
    try:
        if faults_json:
            apply_in_worker(HarnessFaults.from_json(faults_json),
                            label, attempt)
        if budget_limits:
            set_ambient_budget(RunBudget(**budget_limits))
        result = spec.execute()
        try:
            conn.send(("ok", result))
        except Exception as exc:  # unpicklable result: a structured error
            conn.send(("error", type(exc).__name__,
                       "result not sendable: {}".format(exc), ""))
    except BaseException as exc:  # noqa: BLE001 -- becomes a record
        try:
            conn.send(("error", type(exc).__name__, str(exc),
                       traceback.format_exc()))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


@dataclass
class SupervisorStats:
    """Counters over a supervisor's lifetime (summed across runs)."""

    jobs: int = 0
    attempts: int = 0
    succeeded: int = 0
    recovered: int = 0  # succeeded on attempt >= 2
    retries: int = 0
    timeouts: int = 0
    crashes: int = 0
    quarantined: int = 0
    interrupted: int = 0
    serial_fallbacks: int = 0

    def as_dict(self):
        return {f.name: getattr(self, f.name) for f in fields(self)}


class _Job:
    """Mutable dispatch state for one spec."""

    __slots__ = ("spec", "label", "index", "attempt", "eligible_at",
                 "records")

    def __init__(self, spec, label, index):
        self.spec = spec
        self.label = label
        self.index = index
        self.attempt = 0
        self.eligible_at = 0.0
        self.records = []


class _Attempt:
    """One live worker attempt (process mode)."""

    __slots__ = ("job", "proc", "conn", "started", "deadline")

    def __init__(self, job, proc, conn, started, deadline):
        self.job = job
        self.proc = proc
        self.conn = conn
        self.started = started
        self.deadline = deadline


class _Failure:
    """A structured attempt failure, pre-manifest."""

    __slots__ = ("outcome", "error", "traceback")

    def __init__(self, outcome, error, tb=""):
        self.outcome = outcome
        self.error = error
        self.traceback = tb


@contextmanager
def sigterm_as_interrupt():
    """Deliver SIGTERM as KeyboardInterrupt for the enclosed block.

    A supervised run killed by the operator (or a CI timeout) then
    flushes checkpoints and writes its manifest exactly as Ctrl-C
    does. No-op off the main thread (signal handlers cannot be
    installed there).
    """
    import signal
    import threading

    if threading.current_thread() is not threading.main_thread():
        yield
        return
    previous = signal.getsignal(signal.SIGTERM)

    def _handler(signum, frame):
        raise KeyboardInterrupt()

    signal.signal(signal.SIGTERM, _handler)
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


class Supervisor:
    """Supervised execution of declarative job specs.

    ``job_timeout_s``: per-attempt wall-clock deadline (None = no
    watchdog). ``max_retries``: retries after the first attempt, so a
    job gets ``max_retries + 1`` attempts before quarantine.
    ``fail_fast``: raise :class:`JobQuarantined` on the first
    quarantine instead of degrading. ``sim_budget``: a
    :class:`RunBudget` template armed (fresh per attempt) inside every
    worker. ``harness_faults``: a :class:`HarnessFaults` for
    deterministic supervisor testing; defaults to whatever
    ``REPRO_HARNESS_FAULTS`` carries. ``mode``: ``"auto"`` uses worker
    processes when the platform allows and falls back to serial
    in-process attempts; ``"serial"``/``"process"`` force one.
    """

    def __init__(self, job_timeout_s=None, max_retries=2, fail_fast=False,
                 retry_policy=None, harness_faults=None, sim_budget=None,
                 mode="auto", verbose=False, sleep=time.sleep):
        if mode not in ("auto", "process", "serial"):
            raise ValueError("mode must be auto, process or serial")
        self.job_timeout_s = job_timeout_s
        max_attempts = max(1, int(max_retries) + 1)
        self.retry_policy = retry_policy if retry_policy is not None \
            else RetryPolicy(max_attempts=max_attempts)
        self.fail_fast = fail_fast
        self.sim_budget = sim_budget
        self.harness_faults = harness_faults if harness_faults is not None \
            else HarnessFaults.from_env()
        self.mode = mode
        self.verbose = verbose
        self.manifest = FailureManifest()
        self.stats = SupervisorStats()
        #: Optional :class:`~repro.telemetry.emit.RunTelemetry`; when a
        #: FleetRunner attaches one, every failed attempt / quarantine
        #: / budget abort also lands in the run's telemetry stream.
        self.telemetry = None
        self._sleep = sleep
        self._serial_reason = None
        self._serial_logged = False
        self._run_base = self.stats.as_dict()
        self._mp_context = None

    def begin_run(self):
        """Re-scope per-run state at the start of a new run.

        A supervisor outlives individual runs (lifetime ``stats`` are
        deliberately cumulative), but warn-once gates and the run
        summary must not leak between runs: without this, a second
        :class:`~repro.fleet.shard.FleetRunner` sharing the supervisor
        in one process never re-prints the serial-fallback warning and
        ``run_stats`` would report the first run's counters too.
        """
        self._serial_logged = False
        self._run_base = self.stats.as_dict()

    def run_stats(self):
        """Counters accrued since the last :meth:`begin_run` (the
        current run), as a plain dict."""
        current = self.stats.as_dict()
        return {name: current[name] - self._run_base.get(name, 0)
                for name in current}

    # -- public API --------------------------------------------------------

    def execute(self, specs, labels=None, workers=1, on_result=None):
        """Run ``specs`` supervised; returns ``{spec: result}``.

        Quarantined jobs are absent from the mapping and present in
        :attr:`manifest`. ``labels`` parallels ``specs`` (defaults to
        positional labels); ``on_result(spec, result)`` fires the
        moment each job completes -- cache writes and checkpoints ride
        on it, which is what makes interrupt/degrade flushes exact.
        """
        specs = list(specs)
        if labels is None:
            labels = [self.label_for(spec, index)
                      for index, spec in enumerate(specs)]
        if len(labels) != len(specs):
            raise ValueError("labels must parallel specs")
        jobs = [_Job(spec, label, index)
                for index, (spec, label) in enumerate(zip(specs, labels))]
        self.stats.jobs += len(jobs)
        results = {}
        with sigterm_as_interrupt():
            try:
                if self._use_processes(workers):
                    self._run_processes(jobs, max(1, int(workers)),
                                        results, on_result)
                else:
                    self._run_serial(jobs, results, on_result)
            except KeyboardInterrupt:
                raise RunInterrupted(len(results),
                                     len(jobs) - len(results)) from None
        return results

    @staticmethod
    def label_for(spec, index):
        token = getattr(spec, "case_key", None)
        if token is None:
            func = getattr(spec, "func", "")
            token = func.rpartition(":")[2] or type(spec).__name__
        return "job:{:04d}:{}".format(index, token)

    @property
    def serial_reason(self):
        """Why process mode was abandoned, or ``None``."""
        return self._serial_reason

    # -- mode selection ----------------------------------------------------

    def _use_processes(self, workers):
        if self.mode == "serial":
            return False
        if self._mp_context is not None:
            return True
        try:
            import multiprocessing

            # fork keeps worker start cheap and inherits the warmed
            # interpreter; fall back to the platform default elsewhere.
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:
                context = multiprocessing.get_context()
            # Probe the pipe transport now so an unusable platform is
            # one cheap failure here, not one per dispatched job.
            parent, child = context.Pipe(duplex=False)
            parent.close()
            child.close()
        except (ImportError, NotImplementedError, OSError) as exc:
            if self.mode == "process":
                raise
            self._note_serial_fallback(exc)
            return False
        self._mp_context = context
        return True

    def _note_serial_fallback(self, exc):
        self.stats.serial_fallbacks += 1
        reason = "{}: {}".format(type(exc).__name__, exc)
        # Warn once *per run*, not per supervisor lifetime: begin_run
        # re-arms the gate so a second run's operator sees it too.
        if not self._serial_logged:
            self._serial_logged = True
            print("supervisor: worker processes unavailable ({}); "
                  "running jobs in-process -- hung jobs cannot be "
                  "preempted, only budget-aborted".format(reason),
                  file=sys.stderr)
        self._serial_reason = reason

    # -- process mode ------------------------------------------------------

    def _run_processes(self, jobs, workers, results, on_result):
        from multiprocessing.connection import wait as _wait

        pending = deque(jobs)
        waiting = []  # (eligible_at, job) backoff parking lot
        active = {}  # conn -> _Attempt
        try:
            while pending or waiting or active:
                now = time.monotonic()
                if waiting:
                    still = []
                    for eligible_at, job in waiting:
                        if eligible_at <= now:
                            pending.append(job)
                        else:
                            still.append((eligible_at, job))
                    waiting = still
                while pending and len(active) < workers:
                    attempt = self._launch(pending.popleft())
                    active[attempt.conn] = attempt
                if not active:
                    if waiting:
                        self._sleep(max(0.0, min(e for e, __ in waiting)
                                        - time.monotonic()))
                    continue
                timeout = _MAX_WAIT_S
                deadlines = [a.deadline for a in active.values()
                             if a.deadline is not None]
                if deadlines:
                    timeout = min(timeout, max(0.0, min(deadlines)
                                               - time.monotonic()))
                for conn in _wait(list(active), timeout=timeout):
                    self._finish(active.pop(conn), pending, waiting,
                                 results, on_result)
                now = time.monotonic()
                for conn, attempt in list(active.items()):
                    if attempt.deadline is not None \
                            and now >= attempt.deadline:
                        del active[conn]
                        self._expire(attempt, pending, waiting)
        except BaseException:
            self._reap(active)
            if pending or waiting or active:
                self._note_interrupt(results, jobs)
            raise

    def _launch(self, job):
        job.attempt += 1
        self.stats.attempts += 1
        context = self._mp_context
        parent, child = context.Pipe(duplex=False)
        budget_limits = self.sim_budget.limits() \
            if self.sim_budget is not None else None
        faults_json = self.harness_faults.to_json() \
            if self.harness_faults else ""
        proc = context.Process(
            target=_worker_main,
            args=(child, job.spec, job.label, job.attempt, budget_limits,
                  faults_json),
            daemon=True, name="repro-supervised-{}".format(job.label))
        proc.start()
        child.close()
        started = time.monotonic()
        deadline = started + self.job_timeout_s \
            if self.job_timeout_s is not None else None
        if self.verbose:
            print("supervisor: {} attempt {} started (pid {})".format(
                job.label, job.attempt, proc.pid), file=sys.stderr)
        return _Attempt(job, proc, parent, started, deadline)

    def _finish(self, attempt, pending, waiting, results, on_result):
        """A worker's pipe is ready: success, error, or EOF (crash)."""
        job = attempt.job
        elapsed = time.monotonic() - attempt.started
        try:
            message = attempt.conn.recv()
        except (EOFError, OSError):
            message = None
        attempt.conn.close()
        attempt.proc.join(_KILL_GRACE_S)
        if message is not None and message[0] == "ok":
            self._succeed(job, message[1], results, on_result)
            return
        if message is None:
            exitcode = attempt.proc.exitcode
            crash = WorkerCrash(job.label, job.attempt, exitcode)
            self.stats.crashes += 1
            failure = _Failure("crash", str(crash))
        else:
            __, type_name, text, tb = message
            outcome = "budget" if type_name == "BudgetExceeded" else "error"
            failure = _Failure(outcome,
                               "{}: {}".format(type_name, text), tb)
        self._fail(job, failure, elapsed, pending, waiting)

    def _expire(self, attempt, pending, waiting):
        """Deadline passed: kill the worker, record a JobTimeout."""
        job = attempt.job
        elapsed = time.monotonic() - attempt.started
        self._kill(attempt)
        timeout = JobTimeout(job.label, job.attempt, self.job_timeout_s,
                             elapsed)
        self.stats.timeouts += 1
        self._fail(job, _Failure("timeout", str(timeout)), elapsed,
                   pending, waiting)

    @staticmethod
    def _kill(attempt):
        attempt.conn.close()
        proc = attempt.proc
        if proc.is_alive():
            proc.terminate()
            proc.join(_KILL_GRACE_S)
            if proc.is_alive():
                proc.kill()
                proc.join(_KILL_GRACE_S)

    def _reap(self, active):
        for attempt in active.values():
            self._kill(attempt)
            attempt.job.records.append(AttemptRecord(
                attempt=attempt.job.attempt, outcome="interrupted",
                error="run interrupted while attempt was live",
                elapsed_s=round(time.monotonic() - attempt.started, 3)))

    # -- serial mode -------------------------------------------------------

    def _run_serial(self, jobs, results, on_result):
        pending = deque(jobs)
        waiting = []
        try:
            while pending or waiting:
                if not pending:
                    eligible = min(e for e, __ in waiting)
                    self._sleep(max(0.0, eligible - time.monotonic()))
                    now = time.monotonic()
                    still = []
                    for eligible_at, job in waiting:
                        if eligible_at <= now:
                            pending.append(job)
                        else:
                            still.append((eligible_at, job))
                    waiting = still
                    continue
                job = pending.popleft()
                job.attempt += 1
                self.stats.attempts += 1
                started = time.monotonic()
                outcome = self._attempt_serial(job)
                elapsed = time.monotonic() - started
                if isinstance(outcome, _Failure):
                    self._fail(job, outcome, elapsed, pending, waiting)
                else:
                    self._succeed(job, outcome[0], results, on_result)
        except BaseException:
            if pending or waiting:
                self._note_interrupt(results, jobs)
            raise

    def _attempt_serial(self, job):
        """One in-process attempt; a ``_Failure`` or ``(result,)``."""
        faults = self.harness_faults
        directive = faults.directive(job.label, job.attempt) \
            if faults else None
        if directive == "crash":
            self.stats.crashes += 1
            crash = WorkerCrash(job.label, job.attempt,
                                "synthesised-serial")
            return _Failure("crash", str(crash))
        if directive == "hang":
            self.stats.timeouts += 1
            timeout = JobTimeout(job.label, job.attempt,
                                 self.job_timeout_s or float("inf"), 0.0)
            return _Failure("timeout", str(timeout))
        budget = None
        if self.sim_budget is not None:
            budget = self.sim_budget.fresh(max_wall_s=self.job_timeout_s)
        elif self.job_timeout_s is not None:
            budget = RunBudget(max_wall_s=self.job_timeout_s)
        previous = set_ambient_budget(budget)
        try:
            if directive == "fail":
                raise InjectedFault(job.label, job.attempt)
            result = job.spec.execute()
        except KeyboardInterrupt:
            raise
        except BaseException as exc:  # noqa: BLE001 -- becomes a record
            from repro.sim.engine import BudgetExceeded

            outcome = "budget" if isinstance(exc, BudgetExceeded) \
                else "error"
            return _Failure(outcome,
                            "{}: {}".format(type(exc).__name__, exc),
                            traceback.format_exc())
        finally:
            set_ambient_budget(previous)
        return (result,)

    # -- shared attempt bookkeeping ----------------------------------------

    def _succeed(self, job, result, results, on_result):
        results[job.spec] = result
        self.stats.succeeded += 1
        if job.attempt > 1:
            self.stats.recovered += 1
        if self.verbose and job.attempt > 1:
            print("supervisor: {} recovered on attempt {}".format(
                job.label, job.attempt), file=sys.stderr)
        if on_result is not None:
            on_result(job.spec, result)

    def _fail(self, job, failure, elapsed, pending, waiting):
        record = AttemptRecord(
            attempt=job.attempt, outcome=failure.outcome,
            error=failure.error, traceback=failure.traceback,
            elapsed_s=round(elapsed, 3))
        job.records.append(record)
        if self.telemetry is not None:
            self.telemetry.supervisor_attempt(
                job.label, job.attempt, failure.outcome, failure.error)
            if failure.outcome == "budget":
                self.telemetry.budget(job.label, job.attempt,
                                      failure.error)
        if job.attempt < self.retry_policy.max_attempts:
            delay = self.retry_policy.delay_s(job.label, job.attempt + 1)
            record.delay_s = round(delay, 6)
            self.stats.retries += 1
            if self.verbose:
                print("supervisor: {} attempt {} {} ({}); retrying in "
                      "{:.2f}s".format(job.label, job.attempt,
                                       failure.outcome, failure.error,
                                       delay), file=sys.stderr)
            if delay > 0:
                waiting.append((time.monotonic() + delay, job))
            else:
                pending.append(job)
            return
        self._quarantine(job, failure)

    def _quarantine(self, job, failure):
        spec_token = job.spec.cache_token()
        self.manifest.add(FailureRecord(
            label=job.label, spec=spec_token, seed=seed_of(spec_token),
            attempts=list(job.records), quarantined=True))
        self.stats.quarantined += 1
        if self.telemetry is not None:
            self.telemetry.supervisor_attempt(
                job.label, job.attempt, "quarantined", failure.error)
        print("supervisor: {} quarantined after {} attempt(s); last "
              "error: {}".format(job.label, job.attempt, failure.error),
              file=sys.stderr)
        if self.fail_fast:
            raise JobQuarantined(job.label, job.attempt, failure.error)

    def _note_interrupt(self, results, jobs):
        outstanding = len(jobs) - len(results)
        self.stats.interrupted += outstanding
        print("supervisor: interrupted with {} job(s) outstanding; "
              "completed work is flushed".format(outstanding),
              file=sys.stderr)
