"""The failure manifest: partial results, fully accounted for.

A degraded run must say *exactly* what it did not compute. The
manifest records, for every job that ended in quarantine, the job's
declarative spec (its ``cache_token()``), the seed that reproduces it,
and the complete attempt history (outcome, error, traceback, timings,
backoff delays). Written as ``results/failures_<fp>.json``, it doubles
as a repro bundle: ``python -m repro chaos --replay`` accepts a
manifest and re-runs its failed chaos jobs directly.
"""

import json
import os

from dataclasses import asdict, dataclass, field

from repro.version import __version__

MANIFEST_KIND = "failure_manifest"

#: Default directory manifests are written under.
DEFAULT_DIRECTORY = "results"


@dataclass
class AttemptRecord:
    """One attempt of one job, as the supervisor saw it."""

    attempt: int
    outcome: str  # "timeout" | "crash" | "error" | "budget" | "interrupted"
    error: str = ""
    traceback: str = ""
    elapsed_s: float = 0.0
    #: Backoff granted before the *next* attempt (0 for the last one).
    delay_s: float = 0.0


@dataclass
class FailureRecord:
    """One failed job: spec, seed, and its whole attempt history."""

    label: str
    spec: dict  # the spec's cache_token(): kind + declarative fields
    seed: int = None
    attempts: list = field(default_factory=list)  # of AttemptRecord
    quarantined: bool = True

    def as_dict(self):
        data = asdict(self)
        data["attempts"] = [asdict(a) if not isinstance(a, dict) else a
                            for a in self.attempts]
        return data


def seed_of(spec_token):
    """Best-effort seed extraction from a spec's cache token.

    Case jobs carry ``seed`` directly; func jobs may carry it as a
    kwarg; fleet shard jobs embed it in ``population_json``. Returns
    ``None`` when the spec has no recognisable seed.
    """
    if not isinstance(spec_token, dict):
        return None
    if isinstance(spec_token.get("seed"), int):
        return spec_token["seed"]
    kwargs = dict_kwargs(spec_token)
    if isinstance(kwargs.get("seed"), int):
        return kwargs["seed"]
    population_json = kwargs.get("population_json")
    if isinstance(population_json, str):
        try:
            seed = json.loads(population_json).get("seed")
        except ValueError:
            return None
        if isinstance(seed, int):
            return seed
    return None


def dict_kwargs(spec_token):
    """A func-spec token's kwargs as a plain dict (lists -> tuples)."""
    kwargs = {}
    for name, value in spec_token.get("kwargs", ()):
        kwargs[name] = tuple(value) if isinstance(value, list) else value
    return kwargs


class FailureManifest:
    """Accumulates :class:`FailureRecord` entries across a run."""

    def __init__(self, run_fingerprint=""):
        self.run_fingerprint = run_fingerprint
        self.records = []

    def add(self, record):
        self.records.append(record)
        return record

    def __len__(self):
        return len(self.records)

    def __bool__(self):
        return bool(self.records)

    @property
    def labels(self):
        return [record.label for record in self.records]

    def fingerprint(self):
        """The run fingerprint, derived from the records if unset."""
        if self.run_fingerprint:
            return self.run_fingerprint
        import hashlib

        token = "|".join(sorted(
            json.dumps(record.as_dict()["spec"], sort_keys=True)
            for record in self.records))
        return hashlib.sha256(token.encode("utf-8")).hexdigest()[:12]

    def to_dict(self):
        return {
            "kind": MANIFEST_KIND,
            "version": __version__,
            "fingerprint": self.fingerprint(),
            "failed_jobs": len(self.records),
            "records": [record.as_dict() for record in self.records],
        }

    def write(self, directory=DEFAULT_DIRECTORY, path=None):
        """Write ``failures_<fp>.json``; returns the path."""
        if path is None:
            path = os.path.join(directory, "failures_{}.json".format(
                self.fingerprint()))
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    @classmethod
    def from_dict(cls, data):
        if data.get("kind") != MANIFEST_KIND:
            raise ValueError("not a failure manifest: kind={!r}".format(
                data.get("kind")))
        manifest = cls(run_fingerprint=data.get("fingerprint", ""))
        for entry in data.get("records", ()):
            manifest.add(FailureRecord(
                label=entry["label"],
                spec=entry["spec"],
                seed=entry.get("seed"),
                attempts=[AttemptRecord(**a)
                          for a in entry.get("attempts", ())],
                quarantined=entry.get("quarantined", True),
            ))
        return manifest

    @classmethod
    def load(cls, path):
        with open(path) as handle:
            return cls.from_dict(json.load(handle))
