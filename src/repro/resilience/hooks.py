"""Harness-level fault hooks: make the supervisor itself testable.

PR 3 gave the *simulated device* a fault injector; this is the same
idea one level up, aimed at the dispatch path. A
:class:`HarnessFaults` maps job labels (fnmatch patterns) to
directives -- "crash the worker on attempt 1 of shard 3", "hang job X
forever", "raise inside job Y" -- and travels to workers through the
``REPRO_HARNESS_FAULTS`` environment variable, so both the in-worker
and the CLI/CI paths exercise the exact failure the supervisor must
contain. Everything is declarative JSON: a directive fires as a
function of ``(label, attempt)`` only, so faulted runs are as
reproducible as clean ones.
"""

import json
import os
import time

from dataclasses import dataclass
from fnmatch import fnmatchcase

#: Environment variable carrying the JSON spec into worker processes.
ENV_VAR = "REPRO_HARNESS_FAULTS"

#: Exit code used by the injected worker crash (distinctive on purpose:
#: a supervisor report showing 86 means the harness, not the job).
CRASH_EXIT_CODE = 86

_KINDS = ("crash", "hang", "fail")

#: Storage-target fault kinds (see :meth:`HarnessFaults.storage_directive`):
#: ``torn`` = die mid-write leaving a partial journal line, ``corrupt`` =
#: write the record with a mangled crc and keep running, ``crash`` = die
#: right after the record is durable.
_STORAGE_KINDS = ("torn", "corrupt", "crash")


@dataclass(frozen=True)
class HarnessFaults:
    """Declarative dispatch-path faults, keyed by job label patterns.

    Each of ``crash``/``hang``/``fail`` is a tuple of
    ``(label_pattern, attempts)`` pairs where ``attempts`` is a tuple
    of 1-based attempt numbers (empty tuple = every attempt). JSON
    form: ``{"crash": {"shard:000000": [1]}, "hang": {"shard:000001":
    []}}``.
    """

    crash: tuple = ()
    hang: tuple = ()
    fail: tuple = ()
    #: Storage-layer faults as ``(kind, seqs)`` pairs, where ``kind``
    #: is one of :data:`_STORAGE_KINDS` and ``seqs`` is a tuple of
    #: journal record sequence numbers (empty = every record). JSON
    #: form: ``{"storage": {"crash": [37], "torn": [12]}}``.
    storage: tuple = ()
    #: How long an injected hang sleeps in a real worker; the watchdog
    #: is expected to kill it long before this elapses.
    hang_s: float = 3600.0

    def directive(self, label, attempt):
        """``"crash"``/``"hang"``/``"fail"`` for this attempt, or None."""
        for kind in _KINDS:
            for pattern, attempts in getattr(self, kind):
                if fnmatchcase(label, pattern) and (
                        not attempts or attempt in attempts):
                    return kind
        return None

    def storage_directive(self, seq):
        """``"torn"``/``"corrupt"``/``"crash"`` for journal record
        ``seq``, or None. Fires as a function of ``seq`` only, so a
        storage-faulted run is exactly as reproducible as a clean one.
        """
        for kind, seqs in self.storage:
            if not seqs or seq in seqs:
                return kind
        return None

    def __bool__(self):
        return bool(self.crash or self.hang or self.fail or self.storage)

    # -- serialisation -----------------------------------------------------

    def to_json(self):
        data = {kind: {pattern: list(attempts)
                       for pattern, attempts in getattr(self, kind)}
                for kind in _KINDS if getattr(self, kind)}
        if self.storage:
            data["storage"] = {kind: list(seqs)
                               for kind, seqs in self.storage}
        if self.hang_s != 3600.0:
            data["hang_s"] = self.hang_s
        return json.dumps(data, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text):
        data = json.loads(text)
        kwargs = {}
        for kind in _KINDS:
            entries = data.get(kind, {})
            kwargs[kind] = tuple(sorted(
                (pattern, tuple(int(a) for a in attempts))
                for pattern, attempts in entries.items()))
        storage = data.get("storage", {})
        for kind in storage:
            if kind not in _STORAGE_KINDS:
                raise ValueError(
                    "unknown storage fault kind {!r}".format(kind))
        kwargs["storage"] = tuple(sorted(
            (kind, tuple(sorted(int(seq) for seq in seqs)))
            for kind, seqs in storage.items()))
        if "hang_s" in data:
            kwargs["hang_s"] = float(data["hang_s"])
        return cls(**kwargs)

    @classmethod
    def from_env(cls, environ=os.environ):
        """The faults armed via :data:`ENV_VAR`, or ``None``."""
        text = environ.get(ENV_VAR, "").strip()
        return cls.from_json(text) if text else None


def apply_in_worker(faults, label, attempt):
    """Fire a matching directive inside a real worker process.

    ``crash`` exits the process abruptly (no teardown -- the closest a
    pure-python harness gets to a segfault), ``hang`` sleeps until the
    watchdog kills the worker, ``fail`` raises. No match is a no-op.
    """
    directive = faults.directive(label, attempt) if faults else None
    if directive == "crash":
        os._exit(CRASH_EXIT_CODE)
    if directive == "hang":
        deadline = time.monotonic() + faults.hang_s
        while time.monotonic() < deadline:
            time.sleep(min(1.0, faults.hang_s))
        raise RuntimeError(
            "injected hang for job {!r} outlived its {}s sleep -- no "
            "watchdog killed it".format(label, faults.hang_s))
    if directive == "fail":
        from repro.resilience.errors import InjectedFault

        raise InjectedFault(label, attempt)
