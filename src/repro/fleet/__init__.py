"""Sharded fleet-scale population simulation.

The missing layer between the single-device simulator and the ROADMAP's
"millions of users": sample a heterogeneous population of device-days
(:mod:`~repro.fleet.population`), shard it through the parallel grid
runner with per-shard checkpoint/resume (:mod:`~repro.fleet.shard`),
aggregate with mergeable O(shards)-memory statistics
(:mod:`~repro.fleet.stats`), and compare mitigations at population
scale (:mod:`~repro.fleet.report`). Device-days execute on the event
kernel, on the kernel-validated transition-table fast path
(:mod:`~repro.fleet.fastpath`, ``mode="fast"``), or on the columnar
vectorized engine composing whole shards at once over the same table
(:mod:`~repro.fleet.vector`, ``mode="vector"``; ``mode="auto"`` picks
the fastest applicable). CLI: ``python -m repro fleet``.
"""

from repro.fleet.fastpath import (
    TransitionTable,
    build_table,
    cross_validate,
    fast_summary,
    replay_shard,
)
from repro.fleet.population import (
    DeviceColumns,
    DeviceSpec,
    PopulationSpec,
)
from repro.fleet.vector import (
    VECTOR_TOLERANCES,
    compose_shard,
    replay_shard_vector,
)
from repro.fleet.vector import cross_validate as cross_validate_vector
from repro.fleet.report import (
    build_report,
    default_report_path,
    render,
    report_json,
    write_report,
)
from repro.fleet.shard import FleetRunner, run_shard, simulate_device_day
from repro.fleet.stats import (
    FleetStats,
    Histogram,
    MetricSummary,
    Moments,
    QuantileDigest,
    wilson_interval,
)

__all__ = [
    "DeviceColumns",
    "DeviceSpec",
    "PopulationSpec",
    "FleetRunner",
    "run_shard",
    "simulate_device_day",
    "TransitionTable",
    "build_table",
    "cross_validate",
    "cross_validate_vector",
    "fast_summary",
    "replay_shard",
    "replay_shard_vector",
    "compose_shard",
    "VECTOR_TOLERANCES",
    "FleetStats",
    "Histogram",
    "MetricSummary",
    "Moments",
    "QuantileDigest",
    "wilson_interval",
    "build_report",
    "default_report_path",
    "render",
    "report_json",
    "write_report",
]
