"""Sharded fleet-scale population simulation.

The missing layer between the single-device simulator and the ROADMAP's
"millions of users": sample a heterogeneous population of device-days
(:mod:`~repro.fleet.population`), shard it through the parallel grid
runner with per-shard checkpoint/resume (:mod:`~repro.fleet.shard`),
aggregate with mergeable O(shards)-memory statistics
(:mod:`~repro.fleet.stats`), and compare mitigations at population
scale (:mod:`~repro.fleet.report`). Device-days execute on the event
kernel or on the kernel-validated transition-table fast path
(:mod:`~repro.fleet.fastpath`, ``mode="fast"``/``"auto"``). CLI:
``python -m repro fleet``.
"""

from repro.fleet.fastpath import (
    TransitionTable,
    build_table,
    cross_validate,
    fast_summary,
    replay_shard,
)
from repro.fleet.population import DeviceSpec, PopulationSpec
from repro.fleet.report import (
    build_report,
    default_report_path,
    render,
    report_json,
    write_report,
)
from repro.fleet.shard import FleetRunner, run_shard, simulate_device_day
from repro.fleet.stats import (
    FleetStats,
    Histogram,
    MetricSummary,
    Moments,
    QuantileDigest,
    wilson_interval,
)

__all__ = [
    "DeviceSpec",
    "PopulationSpec",
    "FleetRunner",
    "run_shard",
    "simulate_device_day",
    "TransitionTable",
    "build_table",
    "cross_validate",
    "fast_summary",
    "replay_shard",
    "FleetStats",
    "Histogram",
    "MetricSummary",
    "Moments",
    "QuantileDigest",
    "wilson_interval",
    "build_report",
    "default_report_path",
    "render",
    "report_json",
    "write_report",
]
