"""Population-scale comparison report: the fleet analogue of Table 5.

Builds one machine-readable document (``results/fleet_*.json``) and one
human table from the merged per-mitigation
:class:`~repro.fleet.stats.FleetStats`: battery-life distributions,
waste-reduction quantiles vs the paired per-device vanilla baseline,
lease traffic (renewals / deferrals / revocations), and the
false-positive / false-negative rates of the lease classifier with
Wilson 95% confidence intervals -- the population-level counterparts of
the paper's Table 5 and §7 deployment observations.

The JSON is canonical (sorted keys, fixed separators, no timestamps),
so two runs of the same population -- interrupted or not -- produce
byte-identical files; the determinism goldens pin that.
"""

import json
import os

from repro.fleet.stats import wilson_interval
from repro.version import __version__

#: Quantiles reported for every distribution metric.
QUANTILES = (0.05, 0.25, 0.5, 0.75, 0.95)


def _metric_block(summary):
    moments = summary.moments
    block = {
        "count": moments.count,
        "mean": moments.mean,
        "stdev": moments.stdev,
        "min": moments.min,
        "max": moments.max,
        "quantiles": {
            "p{:02.0f}".format(q * 100): summary.digest.quantile(q)
            for q in QUANTILES
        },
        "histogram": summary.histogram.to_dict(),
    }
    return block


def build_report(population, merged, execution=None):
    """The full report dict for a completed fleet run.

    ``merged`` is ``{mitigation: FleetStats}`` from
    :meth:`~repro.fleet.shard.FleetRunner.merged_stats`. ``execution``
    is an optional provenance block (execution mode, transition-table
    fingerprint, cross-validation results -- deterministic facts only,
    never host- or timing-dependent ones); when omitted the report's
    bytes are exactly what they were before the block existed, which
    the determinism goldens pin.
    """
    mitigations = {}
    for name in population.mitigations:
        stats = merged[name]
        counters = dict(stats.counters)
        block = {
            "counters": {k: counters[k] for k in sorted(counters)},
            "metrics": {metric: _metric_block(summary)
                        for metric, summary
                        in sorted(stats.metrics.items())},
        }
        normal = counters.get("normal_apps", 0)
        buggy = counters.get("buggy_apps", 0)
        if name != "vanilla":
            fp, fp_lo, fp_hi = wilson_interval(
                counters.get("fp_apps", 0), normal)
            fn, fn_lo, fn_hi = wilson_interval(
                counters.get("fn_apps", 0), buggy)
            block["classifier"] = {
                "fp_rate": fp, "fp_ci95": [fp_lo, fp_hi],
                "fn_rate": fn, "fn_ci95": [fn_lo, fn_hi],
                "normal_apps": normal, "buggy_apps": buggy,
            }
        mitigations[name] = block
    report = {
        "kind": "fleet_report",
        "version": __version__,
        "population": json.loads(population.to_json()),
        "fingerprint": population.fingerprint(),
        "shards": population.shard_count,
        "devices": population.devices,
        "mitigations": mitigations,
    }
    if execution is not None:
        report["execution"] = execution
    return report


def report_json(report):
    """Canonical bytes of a report -- the byte-identical artifact."""
    return json.dumps(report, sort_keys=True, separators=(",", ":"))


def default_report_path(population, directory="results"):
    return os.path.join(directory, "fleet_s{}_d{}.json".format(
        population.seed, population.devices))


def write_report(report, path=None, directory="results"):
    """Write the canonical JSON artifact; returns its path."""
    if path is None:
        from repro.fleet.population import PopulationSpec

        population = PopulationSpec.from_json(
            json.dumps(report["population"]))
        path = default_report_path(population, directory)
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w") as handle:
        handle.write(report_json(report))
        handle.write("\n")
    return path


# -- rendering ----------------------------------------------------------------

def _fmt(value, pattern="{:.2f}"):
    return pattern.format(value) if value is not None else "-"


def render(report):
    """Human-readable fleet comparison (one table + classifier lines)."""
    from repro.experiments.runner import format_table

    population = report["population"]
    headers = ["mitigation", "battery h (mean)", "p05", "p50", "p95",
               "waste cut % (p50)", "p25..p75", "deferrals/dev",
               "disruptions/dev"]
    rows = []
    for name in population["mitigations"]:
        block = report["mitigations"][name]
        life = block["metrics"]["battery_life_h"]
        counters = block["counters"]
        devices = max(counters.get("devices", 0), 1)
        waste = block["metrics"].get("waste_reduction_pct")
        rows.append([
            name,
            _fmt(life["mean"]),
            _fmt(life["quantiles"]["p05"]),
            _fmt(life["quantiles"]["p50"]),
            _fmt(life["quantiles"]["p95"]),
            _fmt(waste["quantiles"]["p50"]) if waste else "-",
            "{}..{}".format(_fmt(waste["quantiles"]["p25"], "{:.1f}"),
                            _fmt(waste["quantiles"]["p75"], "{:.1f}"))
            if waste else "-",
            _fmt(counters.get("deferrals", 0) / devices),
            _fmt(counters.get("disruptions", 0) / devices),
        ])
    title = ("Fleet comparison: {} devices x {} mitigations, seed {}, "
             "{} shards of <= {} devices, {:.0f} sim-min each"
             .format(report["devices"],
                     len(population["mitigations"]), population["seed"],
                     report["shards"], population["shard_size"],
                     population["minutes"]))
    lines = [format_table(headers, rows, title=title)]
    for name in population["mitigations"]:
        classifier = report["mitigations"][name].get("classifier")
        if not classifier:
            continue
        lines.append(
            "{}: FP rate {:.2%} (95% CI {:.2%}..{:.2%} over {} normal "
            "app-days), FN rate {:.2%} (CI {:.2%}..{:.2%} over {} buggy "
            "app-days)".format(
                name, classifier["fp_rate"], *classifier["fp_ci95"],
                classifier["normal_apps"], classifier["fn_rate"],
                *classifier["fn_ci95"], classifier["buggy_apps"]))
    chaos = population.get("chaos_rate", 0)
    if chaos:
        total_faults = sum(
            report["mitigations"][m]["counters"].get("faults_applied", 0)
            for m in population["mitigations"])
        lines.append("chaos: rate {:.0%}, {} faults applied fleet-wide"
                     .format(chaos, total_faults))
    # Executor provenance: which engine composed the device-days. The
    # counters are per-mitigation device-days, summed fleet-wide here.
    fast_days = sum(
        report["mitigations"][m]["counters"].get("fastpath_devices", 0)
        for m in population["mitigations"])
    if fast_days:
        vector_days = sum(
            report["mitigations"][m]["counters"].get("vector_devices", 0)
            for m in population["mitigations"])
        fallbacks = sum(
            report["mitigations"][m]["counters"].get(
                "fastpath_fallbacks", 0)
            for m in population["mitigations"])
        lines.append(
            "executor: {} table-replayed device-day(s) ({} columnar-"
            "composed), {} kernel fallback(s)".format(
                fast_days, vector_days, fallbacks))
    return "\n".join(lines)
