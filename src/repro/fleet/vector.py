"""Columnar vectorized fleet engine: whole-shard device-day composition.

The scalar fast path (:mod:`repro.fleet.fastpath`) already replaced the
event kernel with transition-table arithmetic, but it still walks one
Python device at a time: sample a ``DeviceSpec``, look up ~20 table
entries, run ~100 float ops, fold. At 10^6+ devices that loop *is* the
runtime. This module turns the same arithmetic into struct-of-arrays
numpy expressions over a whole shard at once:

- **Batched sampling** --
  :meth:`~repro.fleet.population.PopulationSpec.sample_columns` draws
  every device's attributes with the exact ``random.Random`` call
  sequence of ``device()``, but into parallel columns and without
  materialising per-device dataclasses or fault-plan JSON.
- **Equivalence-class resolution** -- devices are grouped by
  ``(profile, app mix, merged case env)``; each class resolves its
  probe entries once (:class:`_ShardClasses`), precomputing every
  per-entry constant the composition needs (baseline deltas, sorted
  awake-axis points, shared-rail lerp endpoints, lease-traffic ints).
  The resolved constants live in append-only *banks* that finalise to
  numpy arrays, so per-device work is pure fancy-indexed gathering.
- **Columnar composition** -- the ``fast_summary`` arithmetic (session
  -exposure lerp, touch rescaling, awake-axis piecewise interpolation,
  shared-rail union correction, seeded jitter) runs as elementwise
  array ops over devices, looping only over app *slots* (<= max_apps)
  and shared rails. Slot padding multiplies/adds exact identities
  (``*1.0``, ``+0.0``), and every expression mirrors the scalar
  operation order, so columnar results are **bit-identical** to
  ``fast_summary`` (IEEE-754 elementwise ops are the same ops).
- **Batched folding** -- metric arrays feed
  :meth:`repro.fleet.stats.FleetStats.observe_many` in device-index
  order, the same per-metric value sequence the scalar fold produces,
  so shard stats (and therefore reports) stay byte-identical across
  executors up to the stated tolerance (see below).

Fallback tiering mirrors the scalar fast path exactly: a device with
an armed fault plan, a missing/crashed probe, or a non-finite
composition is routed -- alone -- through the kernel
(:func:`repro.fleet.shard.simulate_device_day`), with the same
structured one-time warning and the ``fastpath_fallbacks`` counter;
columnar-composed devices are additionally counted in a new
``vector_devices`` counter. When numpy is absent (or
``REPRO_FASTPATH_NUMPY=0``), the engine degrades to per-device
:func:`~repro.fleet.fastpath.fast_summary` calls over the same
class-resolution cache -- same numbers, scalar speed -- mirroring the
``_numpy()`` pattern in :mod:`repro.fleet.stats`.

Accuracy is enforced, not assumed: :func:`cross_validate` compares the
columnar composition against per-device ``fast_summary`` on a seeded
random population under the frozen :data:`VECTOR_TOLERANCES` (exact
for integer metrics, ~1e-9 relative for float powers -- headroom for
ulp-level divergence only, since both sides iterate shared rails in
the same sorted order). The kernel anchor is unchanged:
``fastpath.cross_validate`` still measures fast-vs-kernel under its
own tolerances, and ``repro fleet --mode vector --cross-validate N``
runs both.
"""

from repro.fleet.fastpath import (
    CANONICAL,
    JITTER,
    SHARED_RAILS,
    TransitionTable,
    _capacity_mj,
    _JITTER_SALT,
    _log_fallback_once,
    _scenario_guard,
    active_seconds,
    build_table,
    case_env_json,
    fast_summary,
    jitter_unit,
    validation_population,
)
from repro.fleet.stats import FleetStats, _numpy
from repro.sim.summary import MAX_BATTERY_LIFE_H

#: Shared rails in the fixed order both engines accumulate them
#: (:func:`fastpath._shared_overlap` iterates ``sorted(rails)``).
RAIL_ORDER = tuple(sorted(SHARED_RAILS))

#: Frozen per-metric tolerances for vector-vs-scalar cross-validation:
#: ``abs(vector - fast) <= abs + rel * abs(fast)``. Integer metrics are
#: exact -- both paths sum the same table ints. Float powers carry a
#: ~1e-9 relative band: the compositions are designed bit-identical
#: (same IEEE-754 op sequence), the band is headroom for ulp-level
#: drift only, never for model error -- that budget lives entirely in
#: ``fastpath.DEFAULT_TOLERANCES`` against the kernel.
VECTOR_TOLERANCES = {
    "system_power_mw": {"rel": 1e-9, "abs": 1e-6},
    "buggy_power_mw": {"rel": 1e-9, "abs": 1e-6},
    "battery_life_h": {"rel": 1e-9, "abs": 1e-6},
    "disruptions": {"rel": 0.0, "abs": 0.0},
    "renewals": {"rel": 0.0, "abs": 0.0},
    "deferrals": {"rel": 0.0, "abs": 0.0},
    "revocations": {"rel": 0.0, "abs": 0.0},
    "fp_apps": {"rel": 0.0, "abs": 0.0},
    "fn_apps": {"rel": 0.0, "abs": 0.0},
}

#: Integer outcome fields read from a normal app's ``active`` probe.
_NORMAL_INTS = ("disruptions", "renewals", "deferrals", "revocations",
                "fp_apps")

#: Integer outcome fields read from a buggy app's ``bg``/``fg`` probe.
_BUGGY_INTS = ("disruptions", "renewals", "deferrals", "revocations",
               "fn_apps")

#: All integer metrics a composition produces.
_INT_METRICS = ("disruptions", "renewals", "deferrals", "revocations",
                "fp_apps", "fn_apps")

#: Float metrics a composition produces.
_FLOAT_METRICS = ("system_power_mw", "buggy_power_mw", "battery_life_h")


# -- per-probe constant banks --------------------------------------------------

class _Bank:
    """Append-only column store that finalises to numpy arrays.

    ``floats``/``ints`` name scalar columns; ``rails`` names columns
    that hold one value per :data:`RAIL_ORDER` rail (stored as a list
    of per-rail columns). Rows are interned by the caller; ``arrays``
    snapshots everything as dtype-stable numpy arrays for gathering.
    """

    def __init__(self, floats=(), ints=(), rails=()):
        self.floats = {name: [] for name in floats}
        self.ints = {name: [] for name in ints}
        self.rails = {name: [[] for __ in RAIL_ORDER] for name in rails}
        self.size = 0

    def add(self, floats, ints, rails):
        for name, value in floats.items():
            self.floats[name].append(value)
        for name, value in ints.items():
            self.ints[name].append(value)
        for name, per_rail in rails.items():
            cols = self.rails[name]
            for r, value in enumerate(per_rail):
                cols[r].append(value)
        self.size += 1
        return self.size - 1

    def arrays(self, np):
        out = {}
        for name, col in self.floats.items():
            out[name] = np.asarray(col, dtype=np.float64)
        for name, col in self.ints.items():
            out[name] = np.asarray(col, dtype=np.int64)
        for name, cols in self.rails.items():
            out[name] = [np.asarray(col, dtype=np.float64)
                         for col in cols]
        return out


class _ShardClasses:
    """Equivalence-class resolver + probe-constant interner.

    ``resolve(profile, normal_apps, buggy_apps)`` returns either a
    fallback reason string (mirroring
    :func:`fastpath._device_guard`'s first-failure message, same probe
    walk order) or a ``(n_normal, n_buggy, per_mit)`` tuple of bank
    row ids, with ``per_mit`` aligned to ``self.mitigations`` and each
    element ``(base_id, normal_ids, buggy_ids)``. Interning happens at
    the *slot* level: one context per (profile, merged-env,
    mitigation) holds the base row id and app-name -> row-id maps, so
    a device's resolve is a handful of string-keyed dict hits however
    unique its full app mix is (full (profile, mix, env) classes are
    near-unique at fleet scale, so memoising them would cost more in
    tuple hashing than it saves).
    """

    def __init__(self, table, mitigations):
        self.table = table
        self.mitigations = tuple(mitigations)
        # One context row per (profile, env): per-mitigation base row
        # ids plus app-name -> row-id maps (mit-major, used by the
        # legacy :meth:`resolve` walk).
        self._contexts = {}
        # Device-major twin: app-name -> per-mitigation id *tuples*,
        # so the hot path resolves a device with two comprehensions
        # total instead of two per mitigation (:meth:`resolve_rows`).
        self._rows = {}
        self.base = _Bank(
            floats=("p_idle", "p_active", "p_awake", "aw_idle",
                    "aw_active", "capacity"))
        self.normal = _Bank(
            floats=("bg_idle", "bg_active", "touch", "ex_lo", "ex_hi"),
            ints=_NORMAL_INTS,
            rails=("sh_lo", "sh_d"))
        self.mixed = _Bank(
            floats=("a0", "a1", "a2", "s0", "s1", "s2", "b0", "b1",
                    "b2", "f_s_lo", "f_s_hi", "f_b_lo", "f_b_hi",
                    "ex_lo", "ex_hi"),
            ints=_BUGGY_INTS + ("flat",),
            rails=("p0", "p1", "p2", "f_sh_lo", "f_sh_d"))
        self.fg = _Bank(
            floats=("sys_add", "bug"),
            ints=_BUGGY_INTS,
            rails=("sh",))

    def _entry(self, kind, name, profile, mitigation, variant, env):
        """A live table entry, or the guard's reason string."""
        key = TransitionTable.entry_key(kind, name, profile, mitigation,
                                        variant, env)
        entry = self.table.entries.get(key)
        if entry is None:
            return "missing-probe:{}".format(key)
        if entry["crashed"]:
            return "crashed-probe:{}".format(key)
        return entry

    def _context_row(self, profile, env):
        """The per-(profile, env) context row: one
        ``[base_id_or_reason, normal_map, mixed_map, fg_map,
        normal_bad, mixed_bad, fg_bad]`` list per mitigation, in
        ``self.mitigations`` order -- a single dict hit per device.

        The ``*_map`` dicts hold only successfully interned row ids,
        so the per-device hot path is a bare ``map[name]``
        comprehension; names that resolved to a fallback reason live
        in the ``*_bad`` dicts and surface through the comprehension's
        ``KeyError`` slow path.
        """
        key = (profile, env)
        ctxs = self._contexts.get(key)
        if ctxs is None:
            ctxs = [[self._base_id(profile, env, mitigation),
                     {}, {}, {}, {}, {}, {}]
                    for mitigation in self.mitigations]
            self._contexts[key] = ctxs
        return ctxs

    def _base_id(self, profile, env, mitigation):
        entries = []
        for variant in ("idle", "active", "awake"):
            entry = self._entry("base", "", profile, mitigation,
                                variant, env)
            if isinstance(entry, str):
                return entry
            entries.append(entry)
        idle, active, awake = entries
        return self.base.add(
            {"p_idle": idle["system_power_mw"],
             "p_active": active["system_power_mw"],
             "p_awake": awake["system_power_mw"],
             "aw_idle": idle["awake_frac"],
             "aw_active": active["awake_frac"],
             "capacity": _capacity_mj(profile)}, {}, {})

    def _normal_id(self, name, profile, env, mitigation, base_id):
        entries = []
        for variant in ("idle", "bg", "active"):
            entry = self._entry("normal", name, profile, mitigation,
                                variant, env)
            if isinstance(entry, str):
                return entry
            entries.append(entry)
        idl, bgp, act = entries
        b = self.base
        p_idle = b.floats["p_idle"][base_id]
        p_active = b.floats["p_active"][base_id]
        aw_idle = b.floats["aw_idle"][base_id]
        aw_active = b.floats["aw_active"][base_id]
        sh_lo = [idl["shared_mw"].get(rail, 0.0)
                 for rail in RAIL_ORDER]
        sh_hi = [bgp["shared_mw"].get(rail, 0.0)
                 for rail in RAIL_ORDER]
        return self.normal.add(
            {"bg_idle": max(
                idl["system_power_mw"] - p_idle, 0.0),
             "bg_active": max(
                bgp["system_power_mw"] - p_active, 0.0),
             "touch": max(act["system_power_mw"]
                          - bgp["system_power_mw"], 0.0),
             "ex_lo": max(idl["awake_frac"] - aw_idle, 0.0),
             "ex_hi": max(bgp["awake_frac"] - aw_active, 0.0)},
            {field: act[field] for field in _NORMAL_INTS},
            {"sh_lo": sh_lo,
             "sh_d": [hi - lo
                      for lo, hi in zip(sh_lo, sh_hi)]})

    def _mixed_id(self, case, profile, env, mitigation, base_id):
        entries = []
        for variant in ("bg_idle", "bg", "bg_awake"):
            entry = self._entry("buggy", case, profile, mitigation,
                                variant, env)
            if isinstance(entry, str):
                return entry
            entries.append(entry)
        lo, hi, awk = entries
        b = self.base
        p_idle = b.floats["p_idle"][base_id]
        p_active = b.floats["p_active"][base_id]
        p_awake = b.floats["p_awake"][base_id]
        aw_idle = b.floats["aw_idle"][base_id]
        aw_active = b.floats["aw_active"][base_id]
        # Same tuple order and sort key as fast_summary: the
        # stable sort's tie behaviour is part of the contract.
        points = sorted(
            ((lo["awake_frac"],
              max(lo["system_power_mw"] - p_idle, 0.0),
              max(lo["buggy_power_mw"], 0.0), lo["shared_mw"]),
             (hi["awake_frac"],
              max(hi["system_power_mw"] - p_active, 0.0),
              max(hi["buggy_power_mw"], 0.0), hi["shared_mw"]),
             (awk["awake_frac"],
              max(awk["system_power_mw"] - p_awake, 0.0),
              max(awk["buggy_power_mw"], 0.0),
              awk["shared_mw"])),
            key=lambda point: point[0])
        flat = points[-1][0] - points[0][0] < 0.05
        f_sh_lo = [lo["shared_mw"].get(rail, 0.0)
                   for rail in RAIL_ORDER]
        f_sh_hi = [hi["shared_mw"].get(rail, 0.0)
                   for rail in RAIL_ORDER]
        ints = {field: hi[field] for field in _BUGGY_INTS}
        ints["flat"] = 1 if flat else 0
        return self.mixed.add(
            {"a0": points[0][0], "a1": points[1][0],
             "a2": points[2][0],
             "s0": points[0][1], "s1": points[1][1],
             "s2": points[2][1],
             "b0": points[0][2], "b1": points[1][2],
             "b2": points[2][2],
             "f_s_lo": max(
                lo["system_power_mw"] - p_idle, 0.0),
             "f_s_hi": max(
                hi["system_power_mw"] - p_active, 0.0),
             "f_b_lo": max(lo["buggy_power_mw"], 0.0),
             "f_b_hi": max(hi["buggy_power_mw"], 0.0),
             "ex_lo": max(lo["awake_frac"] - aw_idle, 0.0),
             "ex_hi": max(hi["awake_frac"] - aw_active, 0.0)},
            ints,
            {"p0": [points[0][3].get(rail, 0.0)
                    for rail in RAIL_ORDER],
             "p1": [points[1][3].get(rail, 0.0)
                    for rail in RAIL_ORDER],
             "p2": [points[2][3].get(rail, 0.0)
                    for rail in RAIL_ORDER],
             "f_sh_lo": f_sh_lo,
             "f_sh_d": [hi_v - lo_v for lo_v, hi_v
                        in zip(f_sh_lo, f_sh_hi)]})

    def _fg_id(self, case, profile, env, mitigation, base_id):
        entry = self._entry("buggy", case, profile, mitigation,
                            "fg", env)
        if isinstance(entry, str):
            return entry
        p_active = self.base.floats["p_active"][base_id]
        return self.fg.add(
            {"sys_add": max(
                entry["system_power_mw"] - p_active, 0.0),
             "bug": max(entry["buggy_power_mw"], 0.0)},
            {field: entry[field] for field in _BUGGY_INTS},
            {"sh": [entry["shared_mw"].get(rail, 0.0)
                    for rail in RAIL_ORDER]})

    def resolve(self, profile, normal_apps, buggy_apps):
        reason = _scenario_guard(buggy_apps)
        if reason is not None:
            return reason
        env = case_env_json(buggy_apps)
        per_mit = []
        # Walk probes in _device_guard's order so the first-failure
        # reason string (and the one-time warning) matches the scalar
        # fast path's byte for byte. After a context warms up, each
        # mitigation costs two bare-lookup comprehensions; unseen (or
        # fallback-reason) names drop to the KeyError slow path.
        for mitigation, ctx in zip(self.mitigations,
                                   self._context_row(profile, env)):
            base_id = ctx[0]
            if base_id.__class__ is str:
                return base_id
            normal_map = ctx[1]
            try:
                normal_ids = [normal_map[name] for name in normal_apps]
            except KeyError:
                normal_ids = []
                bad = ctx[4]
                for name in normal_apps:
                    nid = normal_map.get(name)
                    if nid is None:
                        nid = bad.get(name)
                        if nid is None:
                            nid = self._normal_id(name, profile, env,
                                                  mitigation, base_id)
                            if nid.__class__ is str:
                                bad[name] = nid
                            else:
                                normal_map[name] = nid
                        if nid.__class__ is str:
                            return nid
                    normal_ids.append(nid)
            if normal_apps:
                buggy_map, bad = ctx[2], ctx[5]
                build = self._mixed_id
            else:
                buggy_map, bad = ctx[3], ctx[6]
                build = self._fg_id
            try:
                buggy_ids = [buggy_map[case] for case in buggy_apps]
            except KeyError:
                buggy_ids = []
                for case in buggy_apps:
                    bid = buggy_map.get(case)
                    if bid is None:
                        bid = bad.get(case)
                        if bid is None:
                            bid = build(case, profile, env,
                                        mitigation, base_id)
                            if bid.__class__ is str:
                                bad[case] = bid
                            else:
                                buggy_map[case] = bid
                        if bid.__class__ is str:
                            return bid
                    buggy_ids.append(bid)
            per_mit.append((base_id, normal_ids, buggy_ids))
        return (len(normal_apps), len(buggy_apps), per_mit)

    def resolve_rows(self, profile, normal_apps, buggy_apps):
        """Device-major resolve: ``(base_ids, normal_rows,
        buggy_rows)`` -- each element a per-mitigation id tuple -- or
        the guard's fallback reason string.

        The maps cache only names that resolved for *every*
        mitigation, so the hot path is two bare-lookup comprehensions
        per device regardless of the mitigation count. Any device that
        touches a failing probe is delegated wholesale to
        :meth:`resolve`, whose mitigation-major walk produces the
        first-failure reason in :func:`fastpath._device_guard`'s exact
        order -- name-major caching never has to reason about failure
        priority across mitigations.
        """
        reason = _scenario_guard(buggy_apps)
        if reason is not None:
            return reason
        env = case_env_json(buggy_apps)
        key = (profile, env)
        row = self._rows.get(key)
        if row is None:
            base = []
            for mitigation in self.mitigations:
                bid = self._base_id(profile, env, mitigation)
                if bid.__class__ is str:
                    base = None
                    break
                base.append(bid)
            row = [tuple(base) if base is not None else None,
                   {}, {}, {}]
            self._rows[key] = row
        base_ids = row[0]
        if base_ids is None:
            return self.resolve(profile, normal_apps, buggy_apps)
        nmap = row[1]
        bmap = row[2] if normal_apps else row[3]
        try:
            return (base_ids,
                    [nmap[name] for name in normal_apps],
                    [bmap[case] for case in buggy_apps])
        except KeyError:
            return self._resolve_rows_slow(profile, env, row,
                                           normal_apps, buggy_apps)

    def _resolve_rows_slow(self, profile, env, row, normal_apps,
                           buggy_apps):
        """Warm unseen names across every mitigation, then retry."""
        base_ids, nmap = row[0], row[1]
        mixed = bool(normal_apps)
        bmap = row[2] if mixed else row[3]
        build = self._mixed_id if mixed else self._fg_id
        clean = True
        for name in normal_apps:
            if name not in nmap:
                ids = []
                for mi, mitigation in enumerate(self.mitigations):
                    nid = self._normal_id(name, profile, env,
                                          mitigation, base_ids[mi])
                    if nid.__class__ is str:
                        ids = None
                        break
                    ids.append(nid)
                if ids is None:
                    clean = False
                else:
                    nmap[name] = tuple(ids)
        for case in buggy_apps:
            if case not in bmap:
                ids = []
                for mi, mitigation in enumerate(self.mitigations):
                    bid = build(case, profile, env, mitigation,
                                base_ids[mi])
                    if bid.__class__ is str:
                        ids = None
                        break
                    ids.append(bid)
                if ids is None:
                    clean = False
                else:
                    bmap[case] = tuple(ids)
        if not clean:
            return self.resolve(profile, normal_apps, buggy_apps)
        return (base_ids,
                [nmap[name] for name in normal_apps],
                [bmap[case] for case in buggy_apps])


# -- whole-shard composition ---------------------------------------------------

class _Composition:
    """Per-device metric columns for one composed shard range.

    ``data[mitigation][metric]`` is a length-``n`` column (numpy array
    or plain list) in device-index order; ``vector_rows`` were composed
    columnar, ``fallback`` maps the rest to their guard reason. Rows in
    ``fallback`` hold zeros until the caller fills them (replay fills
    from the kernel; cross-validation skips them).
    """

    __slots__ = ("n", "data", "vector_rows", "fallback")

    def __init__(self, n, data, vector_rows, fallback):
        self.n = n
        self.data = data
        self.vector_rows = vector_rows
        self.fallback = fallback

    def value(self, mitigation, metric, row):
        value = self.data[mitigation][metric][row]
        return value if isinstance(value, (int, float)) else value.item()


def _jitter_factors(columns, rows, np=None):
    """The per-device zero-mean jitter factor, sub-seed-derived.

    One factor per device, shared by every mitigation -- the same
    splitmix64 draw :func:`fastpath.jitter_unit` makes, computed as
    elementwise ``uint64`` ops over the whole shard when numpy is
    present (bit-identical: wrapping 64-bit arithmetic and the exact
    ``(z >> 11) * 2**-53`` conversion are the same either way).
    """
    sub_seeds = columns.sub_seed
    if np is None:
        return [1.0 + JITTER * (2.0 * jitter_unit(sub_seeds[row]) - 1.0)
                for row in rows]
    z = np.asarray([sub_seeds[row] for row in rows], dtype=np.uint64)
    z = z ^ np.uint64(_JITTER_SALT)
    z = z + np.uint64(0x9E3779B97F4A7C15)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    z = z ^ (z >> np.uint64(31))
    unit = (z >> np.uint64(11)).astype(np.float64) * (2.0 ** -53)
    return 1.0 + JITTER * (2.0 * unit - 1.0)


def _slot_geometry(np, id_lists):
    """Shared scatter geometry for ragged slot-id lists.

    Slot counts are identical across mitigations (only the bank ids
    differ), so the (width, row-indices, column-indices) triple is
    computed once per device group and reused for every mitigation's
    :func:`_fill_matrix` call.
    """
    widths = np.asarray([len(ids) for ids in id_lists],
                        dtype=np.intp)
    width = int(widths.max()) if widths.shape[0] else 0
    rows = np.repeat(np.arange(widths.shape[0], dtype=np.intp),
                     widths)
    starts = np.cumsum(widths) - widths
    cols = np.arange(int(widths.sum()), dtype=np.intp) \
        - np.repeat(starts, widths)
    return width, rows, cols


def _fill_matrix(np, flat_ids, n_rows, geometry):
    """Rows x width int matrix of bank ids, -1 padded, one scatter.

    ``flat_ids`` is the row-major concatenation of every device's
    slot ids, aligned with the ``geometry`` index arrays.
    """
    width, rows, cols = geometry
    mat = np.full((n_rows, max(width, 1)), -1, dtype=np.int64)
    if rows.shape[0]:
        mat[rows, cols] = flat_ids
    return mat


def compose_shard(population, columns, classes, np=None):
    """Compose every vector-eligible device in ``columns`` columnar.

    Returns a :class:`_Composition`. With ``np`` absent the
    composition degrades to per-device :func:`fast_summary` calls over
    the shared class-resolution cache -- identical numbers (the
    columnar path mirrors ``fast_summary`` op for op), scalar speed.
    """
    n = len(columns)
    mitigations = classes.mitigations
    fallback = {}
    # One pass: resolve each device and land it straight in its
    # composition group (mixed vs all-buggy). Each device contributes
    # one base-id tuple and per-slot id tuples (mitigation-major
    # inside the tuple), split per mitigation only at gather time.
    mix_rows, fg_rows = [], []
    mix_base, mix_norm, mix_bug = [], [], []
    fg_base, fg_bug = [], []
    mix_nnorm = []
    has_fault = columns.has_fault
    profiles = columns.profile
    normal_apps = columns.normal_apps
    buggy_apps = columns.buggy_apps
    resolve_rows = classes.resolve_rows
    for row in range(n):
        if has_fault[row]:
            fallback[row] = "fault-plan-armed"
            continue
        got = resolve_rows(profiles[row], normal_apps[row],
                           buggy_apps[row])
        if got.__class__ is str:
            fallback[row] = got
            continue
        nrows = got[1]
        if nrows:
            mix_rows.append(row)
            mix_nnorm.append(len(nrows))
            mix_base.append(got[0])
            mix_norm.append(nrows)
            mix_bug.append(got[2])
        else:
            fg_rows.append(row)
            fg_base.append(got[0])
            fg_bug.append(got[2])
    if np is None:
        rows = [row for row in range(n) if row not in fallback]
        return _compose_pure(population, columns, classes, rows,
                             fallback)

    data = {m: {metric: np.zeros(n, dtype=np.float64)
                for metric in _FLOAT_METRICS}
            for m in mitigations}
    for m in mitigations:
        for metric in _INT_METRICS:
            data[m][metric] = np.zeros(n, dtype=np.int64)
    rows = mix_rows + fg_rows
    if not rows:
        return _Composition(n, data, [], fallback)

    n_mix = len(mix_rows)
    idx = np.asarray(rows, dtype=np.intp)
    day_s = population.minutes * 60.0
    f_canon = active_seconds(CANONICAL["session_count"],
                             CANONICAL["session_s"], day_s) / day_s
    touches_canon = (f_canon * day_s) / CANONICAL["touch_interval_s"]

    sess_n = np.asarray(columns.session_count, dtype=np.int64)[idx]
    sess_s = np.asarray(columns.session_s, dtype=np.float64)[idx]
    touch_s = np.asarray(columns.touch_interval_s,
                         dtype=np.float64)[idx]
    # active_seconds, vectorised with the scalar loop's exact masked
    # step updates (the early-break becomes a dead lane).
    t = np.zeros(len(rows))
    active = np.zeros(len(rows))
    for step in range(int(sess_n.max())):
        live = (step < sess_n) & (t < day_s)
        active = np.where(live,
                          active + np.minimum(sess_s, day_s - t),
                          active)
        t = np.where(live, t + 2.0 * sess_s, t)
    f_dev = active / day_s
    scale = (f_dev / f_canon) if f_canon > 0 \
        else np.zeros(len(rows))
    touches_dev = (f_dev * day_s) / touch_s
    touch_ratio = (touches_dev / touches_canon) if touches_canon > 0 \
        else np.zeros(len(rows))
    jitter = _jitter_factors(columns, rows, np=np)

    banks = {"base": classes.base.arrays(np),
             "normal": classes.normal.arrays(np),
             "mixed": classes.mixed.arrays(np),
             "fg": classes.fg.arrays(np)}
    # Mixed rows come first in ``rows``, so per-group views are plain
    # contiguous slices; the touch rotation split is shared by every
    # mitigation.
    groups = []
    if mix_rows:
        rotation = np.asarray(mix_nnorm, dtype=np.float64)
        geoms = (_slot_geometry(np, mix_norm),
                 _slot_geometry(np, mix_bug))
        groups.append((True, mix_base, mix_norm, mix_bug,
                       slice(0, n_mix),
                       np.asarray(mix_rows, dtype=np.intp),
                       touch_ratio[:n_mix] / rotation, geoms))
    if fg_rows:
        geoms = (None, _slot_geometry(np, fg_bug))
        groups.append((False, fg_base, None, fg_bug,
                       slice(n_mix, None),
                       np.asarray(fg_rows, dtype=np.intp), None,
                       geoms))
    nonfinite = set()
    for mi, m in enumerate(mitigations):
        for (is_mixed, g_base, g_norm, g_bug, sl, dest, tr,
             geoms) in groups:
            base_idx = np.asarray([ids[mi] for ids in g_base],
                                  dtype=np.intp)
            nmat = None
            if is_mixed:
                nmat = _fill_matrix(
                    np, [t[mi] for dev in g_norm for t in dev],
                    len(g_base), geoms[0])
            bmat = _fill_matrix(
                np, [t[mi] for dev in g_bug for t in dev],
                len(g_base), geoms[1])
            out = _eval_group(
                np, banks, is_mixed, base_idx, nmat, bmat,
                scale=scale[sl], tr=tr, jitter=jitter[sl],
                geoms=geoms)
            bad = ~((out["system_power_mw"] > 0.0)
                    & (out["system_power_mw"] < np.inf))
            if bad.any():
                nonfinite.update(
                    int(r) for r in dest[np.nonzero(bad)[0]])
            for metric, values in out.items():
                data[m][metric][dest] = values
    for row in sorted(nonfinite):
        fallback[row] = "non-finite-composition"
    vector_rows = sorted(row for row in rows if row not in nonfinite)
    return _Composition(n, data, vector_rows, fallback)


def _eval_group(np, banks, is_mixed, base_idx, nmat, bmat, scale, tr,
                jitter, geoms):
    """One device group under one mitigation, fully columnar.

    ``base_idx``/``nmat``/``bmat`` are this mitigation's base-id
    vector and -1-padded slot-id matrices (built by the caller from
    the shared :func:`_slot_geometry` pair in ``geoms``); ``tr`` is
    the rotation-divided touch ratio (mixed groups only); returns
    ``{metric: array}``. Every expression mirrors the corresponding
    ``fast_summary`` line -- see the inline references. Padded slot
    lanes multiply by a zero/one mask instead of ``np.where``: every
    padded operand is finite and the running sums start at +0.0, so
    the masked contribution is exactly +0.0 either way.
    """
    base = banks["base"]
    m = base_idx.shape[0]
    p_idle = base["p_idle"][base_idx]
    p_active = base["p_active"][base_idx]
    capacity = base["capacity"][base_idx]

    # system = p_idle + max(p_active - p_idle, 0) * session_scale
    system = p_idle + np.maximum(p_active - p_idle, 0.0) * scale
    buggy_power = np.zeros(m)
    ints = {name: np.zeros(m, dtype=np.int64)
            for name in _INT_METRICS}
    nsum = [np.zeros(m) for __ in RAIL_ORDER]
    bsum = [np.zeros(m) for __ in RAIL_ORDER]
    umax = [np.zeros(m) for __ in RAIL_ORDER]

    if is_mixed:
        NB = banks["normal"]
        MB = banks["mixed"]
        awake_sess = base["aw_idle"][base_idx] \
            + (base["aw_active"][base_idx]
               - base["aw_idle"][base_idx]) * scale
        nwidth = geoms[0][0]
        bwidth = geoms[1][0]
        # Normal slots evaluate as one (devices x slots) block: a
        # single fancy-indexed gather per table constant, elementwise
        # 2-D arithmetic (the same per-element op sequence as the
        # per-column version -- broadcasting does not reorder ops),
        # then sequential column accumulation so the running sums add
        # slots in exactly the scalar app order.
        nvalid = nmat >= 0
        ngi = np.maximum(nmat, 0)
        scale_c = scale[:, None]
        bg_idle = NB["bg_idle"][ngi]
        background = bg_idle \
            + (NB["bg_active"][ngi] - bg_idle) * scale_c
        contrib = (np.maximum(background, 0.0)
                   + NB["touch"][ngi] * tr[:, None]) * nvalid
        ex_lo = NB["ex_lo"][ngi]
        ex = ex_lo + (NB["ex_hi"][ngi] - ex_lo) * scale_c
        exm = np.where(nvalid, ex, 0.0)
        excess_cols = [exm[:, s] for s in range(nwidth)]
        for s in range(nwidth):
            system = system + contrib[:, s]
        for r in range(len(RAIL_ORDER)):
            v = (NB["sh_lo"][r][ngi]
                 + NB["sh_d"][r][ngi] * scale_c)
            v = np.where(v > 0.0, v, 0.0) * nvalid
            for s in range(nwidth):
                nsum[r] = nsum[r] + v[:, s]
                umax[r] = np.maximum(umax[r], v[:, s])
        for name in _NORMAL_INTS:
            block = NB[name][ngi] * nvalid
            for s in range(nwidth):
                ints[name] = ints[name] + block[:, s]
        if bwidth:
            bvalid = bmat >= 0
            bgi = np.maximum(bmat, 0)
            ex_lo = MB["ex_lo"][bgi]
            ex = ex_lo + (MB["ex_hi"][bgi] - ex_lo) * scale_c
            exm = np.where(bvalid, ex, 0.0)
            excess_cols.extend(exm[:, s] for s in range(bwidth))
            for name in _BUGGY_INTS:
                block = MB[name][bgi] * bvalid
                for s in range(bwidth):
                    ints[name] = ints[name] + block[:, s]
        # asleep = (1 - clamp(awake_sess)) * prod(1 - clamp(excess of
        # every *other* app); padded columns multiply by exactly 1.0.
        # The clamped factors are loop-invariant, so they are built
        # once and reused by every buggy slot's product.
        asleep_base = 1.0 - np.minimum(np.maximum(awake_sess, 0.0),
                                       1.0)
        factors = [1.0 - np.minimum(np.maximum(ex, 0.0), 1.0)
                   for ex in excess_cols]
        for s in range(bwidth):
            col = bmat[:, s]
            valid = col >= 0
            gi = np.maximum(col, 0)
            asleep = asleep_base
            for c, factor in enumerate(factors):
                if c == nwidth + s:
                    continue
                asleep = asleep * factor
            target = 1.0 - asleep
            a0 = MB["a0"][gi]
            a1 = MB["a1"][gi]
            a2 = MB["a2"][gi]
            span1 = a1 - a0
            span2 = a2 - a1
            u1 = np.where(span1 > 1e-9,
                          (target - a0)
                          / np.where(span1 > 1e-9, span1, 1.0), 1.0)
            u2 = np.where(span2 > 1e-9,
                          (target - a1)
                          / np.where(span2 > 1e-9, span2, 1.0), 1.0)
            s0 = MB["s0"][gi]
            s1 = MB["s1"][gi]
            s2 = MB["s2"][gi]
            pw_sys = np.where(
                target <= a0, s0,
                np.where(target <= a1, s0 + (s1 - s0) * u1,
                         np.where(target <= a2, s1 + (s2 - s1) * u2,
                                  s2)))
            b0 = MB["b0"][gi]
            b1 = MB["b1"][gi]
            b2 = MB["b2"][gi]
            pw_bug = np.where(
                target <= a0, b0,
                np.where(target <= a1, b0 + (b1 - b0) * u1,
                         np.where(target <= a2, b1 + (b2 - b1) * u2,
                                  b2)))
            flat = MB["flat"][gi] != 0
            f_s_lo = MB["f_s_lo"][gi]
            f_sys = f_s_lo + (MB["f_s_hi"][gi] - f_s_lo) * scale
            f_b_lo = MB["f_b_lo"][gi]
            f_bug = f_b_lo + (MB["f_b_hi"][gi] - f_b_lo) * scale
            sys_add = np.where(flat, f_sys, pw_sys)
            bug_add = np.where(flat, f_bug, pw_bug)
            system = system + np.maximum(sys_add, 0.0) * valid
            buggy_power = buggy_power \
                + np.maximum(bug_add, 0.0) * valid
            for r in range(len(RAIL_ORDER)):
                p0 = MB["p0"][r][gi]
                p1 = MB["p1"][r][gi]
                p2 = MB["p2"][r][gi]
                v01 = p0 + (p1 - p0) * u1
                v01 = np.where(v01 > 0.0, v01, 0.0)
                v12 = p1 + (p2 - p1) * u2
                v12 = np.where(v12 > 0.0, v12, 0.0)
                pw_sh = np.where(
                    target <= a0, p0,
                    np.where(target <= a1, v01,
                             np.where(target <= a2, v12, p2)))
                f_sh = MB["f_sh_lo"][r][gi] \
                    + MB["f_sh_d"][r][gi] * scale
                f_sh = np.where(f_sh > 0.0, f_sh, 0.0)
                sh = np.where(flat, f_sh, pw_sh) * valid
                bsum[r] = bsum[r] + sh
                umax[r] = np.maximum(umax[r], sh)
    else:
        FB = banks["fg"]
        bwidth = geoms[1][0]
        for s in range(bwidth):
            col = bmat[:, s]
            valid = col >= 0
            gi = np.maximum(col, 0)
            system = system + FB["sys_add"][gi] * valid
            buggy_power = buggy_power + FB["bug"][gi] * valid
            for r in range(len(RAIL_ORDER)):
                v = FB["sh"][r][gi] * valid
                bsum[r] = bsum[r] + v
                umax[r] = np.maximum(umax[r], v)
            for name in _BUGGY_INTS:
                ints[name] = ints[name] + FB[name][gi] * valid

    # Shared-rail union correction, sorted rail order (the same order
    # _shared_overlap accumulates in).
    system_cut = np.zeros(m)
    buggy_cut = np.zeros(m)
    for r in range(len(RAIL_ORDER)):
        total = nsum[r] + bsum[r]
        over = total > umax[r]
        system_cut = system_cut \
            + np.where(over, total - umax[r], 0.0)
        denom = np.where(over, total, 1.0)
        cut = bsum[r] - umax[r] * (bsum[r] / denom)
        buggy_cut = buggy_cut \
            + np.where(over & (bsum[r] > 0.0), cut, 0.0)
    system = np.maximum(system - system_cut, 0.0)
    buggy_power = np.maximum(buggy_power - buggy_cut, 0.0)
    system = system * jitter
    buggy_power = buggy_power * jitter
    safe = np.where(system > 0.0, system, 1.0)
    battery = np.where(
        system <= 0.0, MAX_BATTERY_LIFE_H,
        np.minimum((capacity / safe) / 3600.0, MAX_BATTERY_LIFE_H))
    out = {"system_power_mw": system, "buggy_power_mw": buggy_power,
           "battery_life_h": battery}
    out.update(ints)
    return out


def _compose_pure(population, columns, classes, rows, fallback):
    """Numpy-absent composition: per-device ``fast_summary`` over the
    shared class cache. Bitwise-identical numbers, scalar speed."""
    n = len(columns)
    mitigations = classes.mitigations
    data = {m: {metric: [0.0] * n for metric in _FLOAT_METRICS}
            for m in mitigations}
    for m in mitigations:
        for metric in _INT_METRICS:
            data[m][metric] = [0] * n
    table = classes.table
    vector_rows = []
    for row in rows:
        device = columns.spec(row, population)
        summaries = {}
        for m in mitigations:
            summary = fast_summary(device, m, table,
                                   population.minutes)
            if summary is None:
                summaries = None
                break
            summaries[m] = summary
        if summaries is None:
            fallback[row] = "non-finite-composition"
            continue
        vector_rows.append(row)
        for m, summary in summaries.items():
            for metric in _FLOAT_METRICS + _INT_METRICS:
                data[m][metric][row] = summary[metric]
    return _Composition(n, data, vector_rows, fallback)


# -- shard replay --------------------------------------------------------------

def _int_sum(values):
    """Exact integer column sum (``int64.sum()`` or builtin)."""
    return int(values.sum()) if hasattr(values, "sum") \
        else int(sum(values))


def replay_shard_vector(population, start, stop, table,
                        max_crash_records=None, telemetry=None):
    """Columnar replay of devices [start, stop); kernel fallback per
    device. Returns ``({mitigation: FleetStats}, crashes)``.

    Same observation sequences and counters as
    :func:`fastpath.replay_shard` (bit-identical stats where both
    paths compose), plus a ``vector_devices`` counter saying how many
    device-days went through the columnar engine. ``telemetry`` is the
    shard's :class:`~repro.telemetry.emit.ShardTelemetry` (or None);
    the whole shard is folded into it in one batch per mitigation --
    fallback rows are already overwritten into the columns, so the
    batch counts every device-day exactly once.
    """
    from repro.apps.buggy import scenario_families
    from repro.fleet.shard import MAX_CRASH_RECORDS, simulate_device_day

    if max_crash_records is None:
        max_crash_records = MAX_CRASH_RECORDS
    np = _numpy()
    mitigations = population.mitigations
    columns = population.sample_columns(start, stop)
    classes = _ShardClasses(table, mitigations)
    comp = compose_shard(population, columns, classes, np=np)
    n = comp.n

    # Fallback rows run the kernel (mirroring replay_shard); their
    # summaries overwrite the zero-filled columns and carry the crash/
    # fault fields columnar devices never produce.
    fallback_rows = sorted(comp.fallback)
    crashed_total = {m: 0 for m in mitigations}
    faults_total = {m: 0 for m in mitigations}
    crashes = []
    for row in fallback_rows:
        _log_fallback_once(comp.fallback[row], columns.index[row])
        device = columns.spec(row, population)
        families = scenario_families(device.buggy_apps)
        if telemetry is not None and families:
            # One attribution per device-day, matching replay_shard's
            # per-mitigation observe_families calls.
            telemetry.observe_families(families, count=len(mitigations))
        for m in mitigations:
            summary = simulate_device_day(device, m,
                                          population.minutes)
            for metric in _FLOAT_METRICS + _INT_METRICS:
                comp.data[m][metric][row] = summary[metric]
            crashed_total[m] += summary["crashed"]
            faults_total[m] += summary["faults_applied"]
            if summary["crashed"] and len(crashes) < max_crash_records:
                crashes.append({"device": device.index,
                                "mitigation": m,
                                "error": summary["crash_error"]})
        if telemetry is not None:
            telemetry.device_done()

    n_fallback = len(fallback_rows)
    n_vector = len(comp.vector_rows)
    # Scenario devices are always fallback rows (see _scenario_guard),
    # so scanning every row reproduces replay_shard's per-mitigation
    # family counters exactly.
    family_counts = {}
    for row in range(n):
        for family in scenario_families(columns.buggy_apps[row]):
            family_counts[family] = family_counts.get(family, 0) + 1
    normal_installed = [len(apps) for apps in columns.normal_apps]
    buggy_installed = [len(apps) for apps in columns.buggy_apps]
    vanilla_pos = mitigations.index("vanilla")
    vanilla_buggy = comp.data["vanilla"]["buggy_power_mw"]
    vanilla_battery = comp.data["vanilla"]["battery_life_h"]
    waste_mask = None
    if np is not None:
        waste_mask = vanilla_buggy > 1e-9
        safe_vanilla = np.where(waste_mask, vanilla_buggy, 1.0)

    stats = {}
    for mi, m in enumerate(mitigations):
        fold = FleetStats()
        d = comp.data[m]
        fold.observe_many("battery_life_h", d["battery_life_h"])
        fold.observe_many("system_power_mw", d["system_power_mw"])
        fold.observe_many("buggy_power_mw", d["buggy_power_mw"])
        fold.observe_many("disruptions", d["disruptions"])
        if m != "vanilla" and mi > vanilla_pos:
            # Mirrors _fold_device: waste only where the paired
            # vanilla day wasted anything; delta for every device.
            # The numpy expressions run the scalar's exact float ops
            # elementwise (divide/sub), so the observed sequences are
            # bit-identical to the list-comprehension path.
            if np is not None:
                waste = (100.0 * (1.0 - d["buggy_power_mw"]
                                  / safe_vanilla))[waste_mask]
                delta = d["battery_life_h"] - vanilla_battery
            else:
                buggy = d["buggy_power_mw"]
                waste = [100.0 * (1.0 - buggy[k] / vanilla_buggy[k])
                         for k in range(n) if vanilla_buggy[k] > 1e-9]
                delta = [d["battery_life_h"][k] - vanilla_battery[k]
                         for k in range(n)]
            if len(waste):
                fold.observe_many("waste_reduction_pct", waste)
            fold.observe_many("battery_delta_h", delta)
        if m == "leaseos":
            fold.observe_many("deferrals", d["deferrals"])
        fold.count("devices", n)
        for name in ("renewals", "deferrals", "revocations",
                     "fp_apps", "fn_apps"):
            fold.count(name, _int_sum(d[name]))
        fold.count("crashed", crashed_total[m])
        fold.count("faults_applied", faults_total[m])
        fold.count("disruptions", _int_sum(d["disruptions"]))
        fold.count("normal_apps", sum(normal_installed))
        fold.count("buggy_apps", sum(buggy_installed))
        fold.count("buggy_devices",
                   sum(1 for count in buggy_installed if count))
        fold.count("fastpath_devices", n)
        if n_fallback:
            fold.count("fastpath_fallbacks", n_fallback)
        for family, count in sorted(family_counts.items()):
            fold.count("scenario:" + family, count)
        fold.count("vector_devices", n_vector)
        stats[m] = fold
        if telemetry is not None:
            telemetry.observe_batch(d["system_power_mw"], n,
                                    crashed_total[m])
    if telemetry is not None and n_vector:
        telemetry.device_done(n_vector)
    return stats, crashes


# -- cross-validation ----------------------------------------------------------

def cross_validate(population, n=50, seed=20190451, runner=None,
                   table=None, tolerances=None):
    """Columnar engine vs scalar ``fast_summary`` on ``n`` seeded
    random device-days, under the frozen :data:`VECTOR_TOLERANCES`.

    The scalar fast path is the anchor here -- its own kernel anchor is
    :func:`fastpath.cross_validate`, and ``repro fleet --mode vector
    --cross-validate`` runs both. Deterministic; embedded verbatim in
    the fleet report's provenance block.
    """
    if tolerances is None:
        tolerances = VECTOR_TOLERANCES
    vpop = validation_population(population, n, seed)
    if table is None:
        from repro.experiments.grid import GridRunner

        if runner is None:
            runner = GridRunner()
        table = build_table(vpop, runner=runner)
    np = _numpy()
    columns = vpop.sample_columns(0, n)
    classes = _ShardClasses(table, vpop.mitigations)
    comp = compose_shard(vpop, columns, classes, np=np)

    metrics = {name: {"max_abs_delta": 0.0, "mean_abs_delta": 0.0,
                      "worst": None}
               for name in tolerances}
    violations = []
    compared = 0
    for row in comp.vector_rows:
        device = columns.spec(row, vpop)
        for mitigation in vpop.mitigations:
            fast = fast_summary(device, mitigation, table,
                                vpop.minutes)
            if fast is None:
                continue
            compared += 1
            for name, tol in tolerances.items():
                vec = comp.value(mitigation, name, row)
                delta = abs(vec - fast[name])
                bound = tol.get("abs", 0.0) + tol.get("rel", 0.0) \
                    * abs(fast[name])
                entry = metrics[name]
                entry["mean_abs_delta"] += delta
                if delta >= entry["max_abs_delta"]:
                    entry["max_abs_delta"] = delta
                    entry["worst"] = {"device": columns.index[row],
                                      "mitigation": mitigation,
                                      "fast": fast[name],
                                      "vector": vec,
                                      "tolerance": bound}
                if delta > bound:
                    violations.append(
                        {"device": columns.index[row],
                         "mitigation": mitigation, "metric": name,
                         "fast": fast[name], "vector": vec,
                         "delta": delta, "tolerance": bound})
    for entry in metrics.values():
        if compared:
            entry["mean_abs_delta"] /= compared
    return {
        "kind": "vector_cross_validation",
        "backend": "numpy" if np is not None else "python",
        "n": n,
        "seed": seed,
        "minutes": vpop.minutes,
        "mitigations": list(vpop.mitigations),
        "device_days_compared": compared,
        "fallback_devices": len(comp.fallback),
        "table_fingerprint": table.fingerprint(),
        "tolerances": tolerances,
        "metrics": metrics,
        "violations": violations[:20],
        "violation_count": len(violations),
        "pass": not violations,
    }
