"""Mergeable streaming statistics for fleet-scale aggregation.

A fleet run produces one summary *per device-day*, but a million-device
run must never hold a million summaries: every shard folds its devices
into constant-size accumulators the moment they finish, and the fleet
runner merges the per-shard accumulators in O(shards) memory. Three
accumulator kinds cover the report's needs:

- :class:`Moments` -- count / mean / M2 (Welford updates, Chan et al.
  parallel merge) plus min/max, for means and standard deviations;
- :class:`Histogram` -- fixed, pre-declared bins with integer counts
  (exact, and therefore trivially associative and commutative);
- :class:`QuantileDigest` -- a small deterministic quantile sketch: a
  bounded list of (value, weight) entries compacted by deterministic
  pairwise averaging, no randomness anywhere.

Merge guarantees (relied on by checkpoint/resume -- see docs/fleet.md):

- every accumulator's ``merge`` is **bitwise commutative**:
  ``merge(a, b)`` and ``merge(b, a)`` serialise to identical JSON.
  ``Moments.merge`` achieves this by canonically ordering its operands
  before applying the (float, order-sensitive) Chan formula; the other
  two are exact by construction.
- the fleet runner additionally folds shards in **shard-index order**,
  so a resumed run replays the exact float-op sequence of an
  uninterrupted run and the final report is byte-identical.
- serialisation is lossless: Python's JSON float round-trip is exact,
  so ``from_dict(to_dict(x))`` reproduces ``x`` bit-for-bit.

Batch folds (``add_many`` / ``observe_many``) are *batch-merge* folds,
not replays of the per-value loop: the batch is summarised with a
fixed pairwise halving tree (sums for :class:`Moments`, weighted-mean
sketch points for :class:`QuantileDigest`) and merged into the current
state exactly as a shard merge would be. The tree shape depends only
on the batch length, so the result is deterministic, bit-identical
between the numpy and pure-python backends, and -- because the table
paths fold exactly one batch per metric per shard -- byte-stable
across resume for the same shard boundaries. The kernel path folds
per value (``add``/``observe``) and is untouched by batching.
"""

import math
import os

#: Below this many values the numpy histogram path costs more in array
#: conversion than it saves; the pure loop is used either way.
_NUMPY_BATCH_MIN = 64


def _numpy():
    """The numpy module, or None (absent, or disabled via env).

    numpy is an *optional* accelerator: every batch operation has a
    pure-python implementation that produces bit-identical accumulator
    state, and only exact computations (elementwise float64 ops, which
    IEEE-754 guarantees match Python's scalar arithmetic, plus integer
    bin counting) are delegated to numpy. ``REPRO_FASTPATH_NUMPY=0``
    forces the pure path, which the parity tests use to prove the two
    implementations byte-identical.
    """
    if os.environ.get("REPRO_FASTPATH_NUMPY", "1") == "0":
        return None
    try:
        import numpy
    except ImportError:
        return None
    return numpy


def numpy_backend():
    """Public alias for :func:`_numpy`: the numpy module the fleet's
    batched paths (stats accumulators, the vector engine) will use, or
    ``None`` when numpy is absent or disabled via
    ``REPRO_FASTPATH_NUMPY=0``. Mode selection (``repro fleet --mode
    auto``) and tests key off this single gate so every layer degrades
    together."""
    return _numpy()


def _tree_sum_pure(values):
    """Pairwise-halving sum of a non-empty list of floats.

    Adjacent pairs are added, an odd tail is carried to the end of the
    next level, and the process repeats until one value remains. The
    tree shape is a function of ``len(values)`` alone, so the float-op
    sequence -- and therefore the result, bit for bit -- matches
    :func:`_tree_sum_numpy` on the same values.
    """
    while len(values) > 1:
        nxt = [a + b for a, b in zip(values[0::2], values[1::2])]
        if len(values) % 2:
            nxt.append(values[-1])
        values = nxt
    return values[0]


def _tree_sum_numpy(arr, np):
    """Numpy twin of :func:`_tree_sum_pure`: same halving tree, same
    odd-tail carry, elementwise float64 adds -- bit-identical result."""
    while arr.shape[0] > 1:
        if arr.shape[0] % 2:
            tail = arr[-1:]
            arr = np.concatenate([arr[0:-1:2] + arr[1::2], tail])
        else:
            arr = arr[0::2] + arr[1::2]
    return float(arr[0])


class Moments:
    """Streaming count/mean/M2 with exact-merge bookkeeping."""

    __slots__ = ("count", "mean", "m2", "min", "max")

    def __init__(self, count=0, mean=0.0, m2=0.0, min=None, max=None):
        self.count = count
        self.mean = mean
        self.m2 = m2
        self.min = min
        self.max = max

    def add(self, value):
        """Welford update with one observation."""
        value = float(value)
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def add_many(self, values):
        """Batch-merge fold: summarise the batch, Chan-merge it in.

        The per-value Welford recurrence is inherently sequential, so
        the batch is instead summarised with a pairwise halving tree
        (sum for the mean, sum of squared deviations for M2 -- both
        exact elementwise float64 ops with a length-determined tree
        shape) and merged like a shard. The numpy and pure paths
        produce bit-identical state; which one runs is a speed choice
        only.
        """
        n = len(values)
        if n == 0:
            return
        np = _numpy() if n >= _NUMPY_BATCH_MIN else None
        if np is not None:
            arr = np.asarray(values, dtype=np.float64)
            lo = float(arr.min())
            hi = float(arr.max())
            mean = _tree_sum_numpy(arr, np) / n
            delta = arr - mean
            m2 = _tree_sum_numpy(delta * delta, np)
        else:
            vals = [float(value) for value in values]
            lo = min(vals)
            hi = max(vals)
            mean = _tree_sum_pure(vals) / n
            m2 = _tree_sum_pure(
                [(value - mean) * (value - mean) for value in vals])
        merged = self.merge(Moments(n, mean, m2, lo, hi))
        self.count, self.mean, self.m2 = merged.count, merged.mean, merged.m2
        self.min, self.max = merged.min, merged.max

    @property
    def variance(self):
        """Population variance (0 for fewer than two observations)."""
        if self.count < 2:
            return 0.0
        return self.m2 / self.count

    @property
    def stdev(self):
        return math.sqrt(self.variance)

    def _key(self):
        return (self.count, self.mean, self.m2,
                self.min if self.min is not None else 0.0,
                self.max if self.max is not None else 0.0)

    def merge(self, other):
        """Chan et al. parallel merge, bitwise commutative.

        The formula is order-sensitive in float arithmetic, so the two
        operands are first put into a canonical order; swapping the
        arguments therefore produces a bit-identical result.
        """
        if self.count == 0:
            return Moments(other.count, other.mean, other.m2,
                           other.min, other.max)
        if other.count == 0:
            return Moments(self.count, self.mean, self.m2,
                           self.min, self.max)
        a, b = (self, other) if self._key() <= other._key() else (other, self)
        count = a.count + b.count
        delta = b.mean - a.mean
        mean = a.mean + delta * (b.count / count)
        m2 = a.m2 + b.m2 + delta * delta * (a.count * b.count / count)
        return Moments(
            count, mean, m2,
            min(a.min, b.min), max(a.max, b.max),
        )

    def to_dict(self):
        return {"count": self.count, "mean": self.mean, "m2": self.m2,
                "min": self.min, "max": self.max}

    @classmethod
    def from_dict(cls, data):
        return cls(data["count"], data["mean"], data["m2"],
                   data["min"], data["max"])


class Histogram:
    """Fixed-bin histogram with under/overflow buckets (exact merge)."""

    __slots__ = ("lo", "hi", "bins", "underflow", "overflow")

    def __init__(self, lo, hi, nbins, bins=None, underflow=0, overflow=0):
        if not nbins > 0 or not hi > lo:
            raise ValueError("need hi > lo and nbins > 0")
        self.lo = float(lo)
        self.hi = float(hi)
        self.bins = list(bins) if bins is not None else [0] * nbins
        if len(self.bins) != nbins:
            raise ValueError("bins length {} != nbins {}".format(
                len(self.bins), nbins))
        self.underflow = underflow
        self.overflow = overflow

    def add(self, value, weight=1):
        value = float(value)
        if value < self.lo:
            self.underflow += weight
        elif value >= self.hi:
            self.overflow += weight
        else:
            span = (value - self.lo) / (self.hi - self.lo)
            index = min(int(span * len(self.bins)),
                                 len(self.bins) - 1)
            self.bins[index] += weight

    def add_many(self, values):
        """Count a batch of unit-weight values; exact either way.

        Binning is pure integer counting on top of elementwise float64
        index arithmetic, so the numpy path (vectorised compare +
        ``bincount``) lands every value in the same bin as the scalar
        loop and produces identical counts -- it is an accelerator, not
        an approximation.
        """
        np = _numpy() if len(values) >= _NUMPY_BATCH_MIN else None
        if np is None:
            for value in values:
                self.add(value)
            return
        arr = np.asarray(values, dtype=np.float64)
        under = arr < self.lo
        over = arr >= self.hi
        self.underflow += int(under.sum())
        self.overflow += int(over.sum())
        mid = arr[~(under | over)]
        if mid.size:
            nbins = len(self.bins)
            span = (mid - self.lo) / (self.hi - self.lo)
            index = np.minimum((span * nbins).astype(np.int64), nbins - 1)
            counts = np.bincount(index, minlength=nbins)
            for i, extra in enumerate(counts.tolist()):
                if extra:
                    self.bins[i] += extra

    @property
    def total(self):
        return sum(self.bins) + self.underflow + self.overflow

    def merge(self, other):
        if (other.lo, other.hi, len(other.bins)) != \
                (self.lo, self.hi, len(self.bins)):
            raise ValueError("histogram shapes differ; cannot merge")
        return Histogram(
            self.lo, self.hi, len(self.bins),
            bins=[a + b for a, b in zip(self.bins, other.bins)],
            underflow=self.underflow + other.underflow,
            overflow=self.overflow + other.overflow,
        )

    def to_dict(self):
        return {"lo": self.lo, "hi": self.hi, "bins": list(self.bins),
                "underflow": self.underflow, "overflow": self.overflow}

    @classmethod
    def from_dict(cls, data):
        return cls(data["lo"], data["hi"], len(data["bins"]),
                   bins=data["bins"], underflow=data["underflow"],
                   overflow=data["overflow"])


class QuantileDigest:
    """A small deterministic mergeable quantile sketch.

    Holds at most ``2 * capacity`` weighted points; past that, adjacent
    points (in value order) are pairwise-combined into their weighted
    mean, halving the list. Compaction uses no randomness and depends
    only on the sorted point set, so the digest is deterministic and its
    merge is bitwise commutative (merge = concatenate, sort, compact).
    Quantile error is bounded by the local bucket width -- ample for
    population reporting, tiny on the wire (<= capacity pairs).
    """

    __slots__ = ("capacity", "entries")

    def __init__(self, capacity=128, entries=()):
        if capacity < 4:
            raise ValueError("capacity must be >= 4")
        self.capacity = capacity
        self.entries = [(float(v), float(w)) for v, w in entries]

    def add(self, value, weight=1.0):
        self.entries.append((float(value), float(weight)))
        if len(self.entries) > 2 * self.capacity:
            self._compact()

    def add_many(self, values):
        """Batch-merge fold: sketch the batch, merge it in.

        The batch is sorted and pairwise-halved down to ``capacity``
        weighted points -- the same adjacent-pair weighted-mean step
        :meth:`_compact` uses, with the same odd-tail carry -- then
        folded into the digest exactly as :meth:`merge` would fold
        another digest. Sorting, pairing and weighted means are exact
        elementwise float64 ops over a length-determined tree, so the
        numpy and pure paths produce bit-identical entries.
        """
        n = len(values)
        if n == 0:
            return
        np = _numpy() if n >= _NUMPY_BATCH_MIN else None
        capacity = self.capacity
        if np is not None:
            vals = np.sort(np.asarray(values, dtype=np.float64))
            weights = np.ones(n, dtype=np.float64)
            while vals.shape[0] > capacity:
                odd = vals.shape[0] % 2
                stop = vals.shape[0] - odd or None
                wsum = weights[0:stop:2] + weights[1::2]
                pair = (vals[0:stop:2] * weights[0:stop:2]
                        + vals[1::2] * weights[1::2]) / wsum
                if odd:
                    pair = np.concatenate([pair, vals[-1:]])
                    wsum = np.concatenate([wsum, weights[-1:]])
                vals, weights = pair, wsum
            batch = list(zip(vals.tolist(), weights.tolist()))
        else:
            batch = [(float(value), 1.0) for value in values]
            batch.sort()
            while len(batch) > capacity:
                combined = [
                    ((v1 * w1 + v2 * w2) / (w1 + w2), w1 + w2)
                    for (v1, w1), (v2, w2) in zip(batch[0::2], batch[1::2])
                ]
                if len(batch) % 2:
                    combined.append(batch[-1])
                batch = combined
        self.entries = sorted(self.entries + batch)
        if len(self.entries) > 2 * capacity:
            self._compact()

    def _compact(self):
        self.entries.sort()
        while len(self.entries) > self.capacity:
            combined = []
            pairs = zip(self.entries[::2], self.entries[1::2])
            for (v1, w1), (v2, w2) in pairs:
                weight = w1 + w2
                combined.append(((v1 * w1 + v2 * w2) / weight, weight))
            if len(self.entries) % 2:
                combined.append(self.entries[-1])
            self.entries = combined

    @property
    def total_weight(self):
        return sum(w for __, w in self.entries)

    def quantile(self, q):
        """The value at cumulative-weight fraction ``q`` (0..1)."""
        if not self.entries:
            return None
        entries = sorted(self.entries)
        target = min(max(float(q), 0.0), 1.0) \
            * sum(w for __, w in entries)
        cumulative = 0.0
        for value, weight in entries:
            cumulative += weight
            if cumulative >= target:
                return value
        return entries[-1][0]

    def merge(self, other):
        if other.capacity != self.capacity:
            raise ValueError("digest capacities differ; cannot merge")
        merged = QuantileDigest(self.capacity,
                                sorted(self.entries + other.entries))
        if len(merged.entries) > 2 * merged.capacity:
            merged._compact()
        return merged

    def to_dict(self):
        return {"capacity": self.capacity,
                "entries": [[v, w] for v, w in sorted(self.entries)]}

    @classmethod
    def from_dict(cls, data):
        return cls(data["capacity"], data["entries"])


#: Histogram bounds per fleet metric: (lo, hi, nbins). Metrics without
#: an entry get DEFAULT_BOUNDS. Fixed up front so every shard bins
#: identically and merges stay exact.
METRIC_BOUNDS = {
    "battery_life_h": (0.0, 240.0, 48),
    "system_power_mw": (0.0, 2000.0, 50),
    "buggy_power_mw": (0.0, 1000.0, 50),
    "waste_reduction_pct": (-100.0, 100.0, 40),
    "disruptions": (0.0, 50.0, 25),
    "deferrals": (0.0, 200.0, 40),
}

DEFAULT_BOUNDS = (0.0, 1000.0, 50)


class MetricSummary:
    """One metric's full accumulator set: moments + histogram + digest."""

    __slots__ = ("name", "moments", "histogram", "digest")

    def __init__(self, name, moments=None, histogram=None, digest=None):
        lo, hi, nbins = METRIC_BOUNDS.get(name, DEFAULT_BOUNDS)
        self.name = name
        self.moments = moments if moments is not None else Moments()
        self.histogram = histogram if histogram is not None \
            else Histogram(lo, hi, nbins)
        self.digest = digest if digest is not None else QuantileDigest()

    def add(self, value):
        self.moments.add(value)
        self.histogram.add(value)
        self.digest.add(value)

    def add_many(self, values):
        np = _numpy() if len(values) >= _NUMPY_BATCH_MIN else None
        if np is not None:
            # One list->array conversion shared by all three
            # accumulators (asarray on an ndarray is a no-copy pass).
            values = np.asarray(values, dtype=np.float64)
        self.moments.add_many(values)
        self.histogram.add_many(values)
        self.digest.add_many(values)

    def merge(self, other):
        return MetricSummary(
            self.name,
            moments=self.moments.merge(other.moments),
            histogram=self.histogram.merge(other.histogram),
            digest=self.digest.merge(other.digest),
        )

    def to_dict(self):
        return {"moments": self.moments.to_dict(),
                "histogram": self.histogram.to_dict(),
                "digest": self.digest.to_dict()}

    @classmethod
    def from_dict(cls, name, data):
        return cls(
            name,
            moments=Moments.from_dict(data["moments"]),
            histogram=Histogram.from_dict(data["histogram"]),
            digest=QuantileDigest.from_dict(data["digest"]),
        )


class FleetStats:
    """Everything one mitigation accumulated across its device-days.

    ``metrics`` maps metric name -> :class:`MetricSummary`;
    ``counters`` maps counter name -> int. Both merge by union, so
    shards that never saw a metric (e.g. no buggy app sampled) still
    merge cleanly.
    """

    __slots__ = ("metrics", "counters")

    def __init__(self, metrics=None, counters=None):
        self.metrics = metrics if metrics is not None else {}
        self.counters = counters if counters is not None else {}

    def observe(self, name, value):
        if name not in self.metrics:
            self.metrics[name] = MetricSummary(name)
        self.metrics[name].add(value)

    def observe_many(self, name, values):
        """Fold one batch of observations via the accumulators'
        batch-merge folds (see the module docstring); the table paths
        call this exactly once per metric per shard, which is what
        makes their reports byte-stable across resume. Accepts a list
        or a 1-D numpy array.

        An empty batch is a no-op -- it must not create the metric,
        or a shard that never saw it would merge differently from one
        that observed nothing.
        """
        if len(values) == 0:
            return
        if name not in self.metrics:
            self.metrics[name] = MetricSummary(name)
        self.metrics[name].add_many(values)

    def count(self, name, amount=1):
        self.counters[name] = self.counters.get(name, 0) + amount

    def merge(self, other):
        metrics = {}
        for name in sorted(set(self.metrics) | set(other.metrics)):
            mine = self.metrics.get(name)
            theirs = other.metrics.get(name)
            if mine is None:
                metrics[name] = MetricSummary.from_dict(
                    name, theirs.to_dict())
            elif theirs is None:
                metrics[name] = MetricSummary.from_dict(name, mine.to_dict())
            else:
                metrics[name] = mine.merge(theirs)
        counters = dict(self.counters)
        for name, amount in other.counters.items():
            counters[name] = counters.get(name, 0) + amount
        return FleetStats(metrics, counters)

    def to_dict(self):
        return {
            "metrics": {name: summary.to_dict()
                        for name, summary in sorted(self.metrics.items())},
            "counters": {name: self.counters[name]
                         for name in sorted(self.counters)},
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            metrics={name: MetricSummary.from_dict(name, entry)
                     for name, entry in data["metrics"].items()},
            counters=dict(data["counters"]),
        )


def wilson_interval(successes, trials, z=1.96):
    """Wilson score 95% CI for a binomial rate; (0, 0, 0) on no trials."""
    if trials <= 0:
        return 0.0, 0.0, 0.0
    phat = successes / trials
    denom = 1.0 + z * z / trials
    center = (phat + z * z / (2.0 * trials)) / denom
    margin = (z / denom) * math.sqrt(
        phat * (1.0 - phat) / trials + z * z / (4.0 * trials * trials))
    return phat, max(0.0, center - margin), \
        min(1.0, center + margin)
