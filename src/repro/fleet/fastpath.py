"""Batched fast-path device-day simulator, validated against the kernel.

The discrete-event kernel spends ~0.25 host-seconds per simulated
device-day; at fleet scale (ROADMAP: "millions of device-days") that is
the whole budget. This module replaces the event loop with a
**transition/outcome table**: the kernel is run once per
*device-equivalence class* -- a (device profile, mitigation, app)
combination on a canonical representative day -- and whole shards of
device-days are then replayed as table lookups plus deterministic,
seed-derived perturbation. Three-plus orders of magnitude faster, and
continuously cross-validated against the kernel it summarises
(SimDC-style aggregated fast-pathing; see PAPERS.md).

How a device-day is composed from probes
----------------------------------------

Every probe runs the *real* kernel via
:func:`repro.fleet.shard.build_device_phone` on a canonical day
(:data:`CANONICAL`), and is summarised by the same
:func:`repro.sim.summary.day_summary` hook as the kernel path:

- ``base/idle``      -- no apps, screen off all day: the floor power.
- ``base/active``    -- no apps, canonical screen sessions: isolates
  the screen/session ambient cost, which the replay rescales to each
  device's sampled session schedule (exact alternation arithmetic,
  :func:`active_seconds`).
- ``base/awake``     -- no apps, canonical sessions *plus* an all-day
  suspend veto: the baseline for the ``bg_awake`` point below.
- ``normal/<app>/{idle,bg,active}`` -- the app alone at three
  exposure points: screen off all day (``idle``), canonical screen
  cycling without touches (``bg``), and canonical sessions *with*
  touches (``active``). ``idle``/``bg`` bracket the app's
  screen-context-dependent background cost (interpolated linearly in
  the device's active fraction); ``active - bg`` isolates the pure
  touch cost, rescaled by the device's touch rate and divided across
  the session rotation (an app on a 4-app device receives ~1/4 of the
  touches the probe received).
- ``buggy/<case>/{bg_idle,bg,bg_awake}`` -- the Table-5 case installed
  with screen off, under canonical screen cycling, and under cycling
  plus an all-day suspend veto, all *without* touches: three points
  spanning the **awake-fraction axis**. Deep sleep freezes app
  execution, so a *mitigated* (lease-deferred) app's power depends on
  how much of the day the phone is held out of suspend -- by the
  user's sessions or by co-installed apps' wakelocks. The replay
  interpolates each mitigated case piecewise-linearly along this
  measured axis at the device's composed awake fraction (session
  awake time unioned with every other app's probed awake excess).
- ``buggy/<case>/fg`` -- the case *receiving* the user session, for
  devices whose sampled mix is all-buggy.

Every probe is additionally keyed by the device's **merged case
environment**: each Table-5 case pins the phone environment that
triggers its bug (``CaseSpec.phone_kwargs``), later installs override
earlier ones, and whether a bug fires can depend on the *winning*
values (a weak-signal case suppresses a stationary-tracking case's
fix-processing spin by keeping GPS from ever locking). Probes
therefore run under the device's final merged overrides
(:func:`merged_case_env`), so an app's table entry reflects the
environment it actually inhabits on that device class.

Lease traffic, disruptions and classifier outcomes (fp/fn) are integer
outcomes read straight from the probes and summed; powers are composed
additively and perturbed by a small zero-mean multiplicative jitter
derived from the device sub-seed (standing in for the kernel's
seed-to-seed variance). Battery life uses the identical
formula-and-clamp as the kernel (:func:`repro.sim.summary.
battery_life_h`).

Everything is deterministic: probes are seeded and cached
(content-addressed, through the grid :class:`~repro.experiments.grid.
ResultCache`), the table serialises to canonical JSON with a sha256
fingerprint, and a replayed shard's ``FleetStats`` are bit-identical
across shard order, batch size, kill-and-resume, and numpy presence.

Accuracy is a *measured, stated* contract, not an assumption:
:func:`cross_validate` runs N seeded random device-days through both
paths and asserts every per-metric delta within
:data:`DEFAULT_TOLERANCES` (see docs/fleet.md for the accuracy model).
A device the table cannot faithfully replay -- armed fault plan,
missing or crashed probe, non-finite composition -- **falls back to
the kernel for that device alone**, with a structured one-time warning
and a ``fastpath_fallbacks`` counter, instead of degrading the shard.
"""

import hashlib
import json
import sys

from repro.fleet.population import DeviceSpec, PopulationSpec
from repro.fleet.stats import FleetStats

#: Bump when the canonical day, the probe set, or the composition model
#: changes: it salts every probe's cache key and the table fingerprint,
#: so stale probe results and checkpoints are never served across a
#: model change.
PROBE_SCHEMA = 1

#: The canonical representative day every probe runs. Values sit at the
#: midpoints of the population sampler's ranges
#: (:meth:`~repro.fleet.population.PopulationSpec.device`).
CANONICAL = {
    "gps_quality": 0.765,
    "movement_mps": 0.0,
    "network_kind": "wifi",
    "battery_level": 0.75,
    "session_count": 2,
    "session_s": 360.0,
    "touch_interval_s": 24.0,
}

#: Fixed sub-seed for every probe phone: probes are class
#: representatives, not sampled devices.
PROBE_SEED = 20190451

#: Relative half-width of the zero-mean per-device jitter applied to
#: modelled powers -- stands in for the kernel's seed-to-seed variance.
JITTER = 0.01

_JITTER_SALT = 0x5DEECE66D

_MASK64 = 0xFFFFFFFFFFFFFFFF


def jitter_unit(sub_seed):
    """The device's jitter draw in [0, 1): splitmix64 of the sub-seed.

    A single hash-derived uniform instead of seeding a Mersenne
    Twister per device: the same determinism contract (device
    sub-seed -> factor, platform-independent), but pure 64-bit integer
    arithmetic, so the vector engine computes it for a whole shard as
    elementwise ``uint64`` numpy ops that are bit-identical to this
    scalar (``(z >> 11) * 2**-53`` is exact in float64 both ways).
    """
    z = (sub_seed ^ _JITTER_SALT) & _MASK64
    z = (z + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    z = z ^ (z >> 31)
    return (z >> 11) * (2.0 ** -53)

#: ``mode="auto"`` picks the fast path at or above this population
#: size; below it the table build cannot amortise over enough
#: device-days to beat just running the kernel.
AUTO_MIN_DEVICES = 512

#: At most this many devices are scanned for needed probes. The
#: distinct (profile, app, merged-environment) classes saturate within
#: a few thousand iid samples, so for larger fleets the scan prefix
#: covers the tail too; a genuinely unseen class simply falls back to
#: the kernel at replay time (counted and warned, never wrong).
PROBE_SCAN_CAP = 20000

#: Exposure variants probed for the app-free base day: screen off all
#: day, canonical screen sessions, and sessions plus an all-day suspend
#: veto (the baseline for :data:`BUGGY_VARIANTS`' ``bg_awake`` point).
BASE_VARIANTS = ("idle", "active", "awake")

#: Exposure variants probed per normal archetype.
NORMAL_VARIANTS = ("idle", "bg", "active")

#: Exposure variants probed per Table-5 case on a mixed device: the
#: (screen-off, screen-cycling, held-awake) points spanning the *awake
#: fraction* axis a mitigated app's power moves along.
BUGGY_VARIANTS = ("bg_idle", "bg", "bg_awake")

#: Single-hardware-unit rails whose draw is *split* across the apps
#: holding them (the unit runs once no matter how many holders):
#: awake-idle CPU, the GPS chip, the wifi lock, the screen. A solo
#: probe absorbs such a rail whole, so composing co-installed apps
#: must collapse overlapping holds to the rail's union
#: (:func:`fast_summary`). Per-record rails (sensors, audio, compute,
#: network transfers) are additive and need no correction.
SHARED_RAILS = ("cpu_base", "gps", "wifi_lock", "screen")

#: Probe-summary fields carried in a table entry. ``shared_mw`` maps
#: each :data:`SHARED_RAILS` name to the probed app's attributed draw
#: on it (rails the app never touched are absent).
ENTRY_FIELDS = (
    "system_power_mw", "buggy_power_mw", "shared_mw", "awake_frac",
    "disruptions", "renewals", "deferrals", "revocations", "fp_apps",
    "fn_apps", "crashed",
)

#: Metrics compared kernel-vs-fast by :func:`cross_validate`, with the
#: default per-device-day tolerance: a delta passes iff
#: ``abs(fast - kernel) <= abs_tol + rel_tol * abs(kernel)``. These are
#: calibrated against measured composition error (docs/fleet.md has the
#: accuracy model and the measured envelope behind each number).
DEFAULT_TOLERANCES = {
    "system_power_mw": {"rel": 0.25, "abs": 60.0},
    "buggy_power_mw": {"rel": 0.25, "abs": 60.0},
    "battery_life_h": {"rel": 0.25, "abs": 6.0},
    "disruptions": {"rel": 0.5, "abs": 10.0},
    "renewals": {"rel": 0.5, "abs": 10.0},
    "deferrals": {"rel": 1.0, "abs": 40.0},
    "revocations": {"rel": 1.0, "abs": 10.0},
    "fp_apps": {"rel": 0.0, "abs": 2.0},
    "fn_apps": {"rel": 0.0, "abs": 2.0},
}


# -- kernel probes -------------------------------------------------------------

def _probe_device(profile, normal_apps=(), buggy_apps=(),
                  session_count=None):
    """The canonical-day DeviceSpec a probe simulates."""
    if session_count is None:
        session_count = CANONICAL["session_count"]
    return DeviceSpec(
        index=0,
        sub_seed=PROBE_SEED,
        profile=profile,
        normal_apps=tuple(normal_apps),
        buggy_apps=tuple(buggy_apps),
        gps_quality=CANONICAL["gps_quality"],
        movement_mps=CANONICAL["movement_mps"],
        network_kind=CANONICAL["network_kind"],
        battery_level=CANONICAL["battery_level"],
        session_count=session_count,
        session_s=CANONICAL["session_s"],
        touch_interval_s=CANONICAL["touch_interval_s"],
        fault_plan_json="",
    )


def _screen_cycle_day(phone, session_count, session_s):
    """Canonical screen on/off alternation with no touches.

    The ambient session cost a *background* app experiences: the user
    is present (screen cycling on the canonical schedule) but the
    foreground belongs to apps that are not installed in this probe.
    """
    from repro.sim.events import Timeout

    for __ in range(session_count):
        phone.screen_on()
        yield Timeout(session_s)
        phone.screen_off()
        yield Timeout(session_s)


#: Merged-environment memo, keyed by the device's ``buggy_apps`` tuple
#: (the only input to the merge). The buggy-case registry is static, so
#: entries never go stale; the key space is bounded by the distinct
#: buggy-app combinations a process actually samples (tiny next to the
#: device count -- this is exactly the device-equivalence-class axis).
_ENV_CACHE = {}


def _case_env(buggy_apps):
    """``(merged env dict, canonical JSON)`` for one buggy-app tuple."""
    cached = _ENV_CACHE.get(buggy_apps)
    if cached is None:
        from repro.apps.buggy import resolve_case

        env = {}
        for key in buggy_apps:
            env.update(resolve_case(key).phone_kwargs)
        cached = (env, json.dumps(env, sort_keys=True,
                                  separators=(",", ":")))
        _ENV_CACHE[buggy_apps] = cached
    return cached


def merged_case_env(device):
    """The device's final phone-kwargs overrides from its buggy cases.

    Replicates :func:`repro.fleet.shard.build_device_phone`'s merge:
    every case pins its triggering environment, later installs win.
    Memoised per buggy-app tuple (the device-equivalence-class key), so
    table build and replay do the JSON canonicalisation once per class
    instead of once per device.
    """
    return dict(_case_env(tuple(device.buggy_apps))[0])


def case_env_json(buggy_apps):
    """Canonical env JSON for a buggy-app tuple (class-level lookup)."""
    return _case_env(tuple(buggy_apps))[1]


def device_env_json(device):
    """Canonical JSON of :func:`merged_case_env` -- the table's
    environment key component."""
    return _case_env(tuple(device.buggy_apps))[1]


def probe_day(kind, name, profile, mitigation, minutes, variant,
              env_json="{}", schema=PROBE_SCHEMA):
    """Run one table probe through the kernel; returns entry scalars.

    Module-level with scalar kwargs so probes dispatch as
    :class:`~repro.experiments.grid.FuncSpec` jobs -- parallel through
    the grid pool and memoised in the content-addressed cache.
    ``env_json`` is the probed device class's merged case environment,
    applied as the final phone overrides; ``schema`` only salts the
    cache key.
    """
    from repro.fleet.shard import build_device_phone
    from repro.sim.summary import day_summary

    device = _probe_device(
        profile,
        normal_apps=(name,) if kind == "normal" else (),
        buggy_apps=(name,) if kind == "buggy" else ())
    phone, buggy_uids, interactive_uids, __ = \
        build_device_phone(device, mitigation,
                           extra_overrides=json.loads(env_json))
    session_uids = interactive_uids or buggy_uids
    if variant in ("awake", "bg_awake"):
        # Pin the phone out of deep sleep below the wakelock/lease
        # layer (a raw suspend veto, invisible to the mitigation): the
        # measurement point for an app on a device some *other* app
        # holds awake all day.
        phone.suspend.add_reason("fastpath.keepawake")
    if variant in ("active", "fg") and session_uids:
        # The kernel path's scripted user day: touches go to the app.

        def scripted_day():
            for __ in range(device.session_count):
                yield from phone.user.active_session(
                    session_uids, device.session_s,
                    touch_interval=device.touch_interval_s)
                yield from phone.user.idle_session(device.session_s)

        phone.sim.spawn(scripted_day(), name="fastpath.user")
    elif variant not in ("idle", "bg_idle"):
        phone.sim.spawn(
            _screen_cycle_day(phone, device.session_count,
                              device.session_s),
            name="fastpath.screen")
    mark = phone.energy_mark()
    crashed = 0
    try:
        phone.run_for(minutes=minutes)
    except Exception:  # noqa: BLE001 -- a crashed probe is data too
        crashed = 1
    summary = day_summary(phone, mark, buggy_uids=buggy_uids,
                          interactive_uids=interactive_uids)
    summary["crashed"] = crashed
    shared = {}
    uids = buggy_uids + interactive_uids
    if uids and minutes > 0:
        for rail in SHARED_RAILS:
            energy = phone.monitor.ledger.app_rail_mj(uids[0], rail)
            if energy > 0:
                shared[rail] = energy / (minutes * 60.0)
    summary["shared_mw"] = shared
    # Fraction of the day the phone was out of deep sleep, recovered
    # exactly from the cpu_base rail's two-level draw (sleep vs
    # awake-idle): deep sleep freezes app execution, so composing a
    # mitigated (deferred) app with apps that keep the phone awake
    # needs this per-probe signal (:func:`fast_summary`).
    prof = phone.profile
    day_s = minutes * 60.0
    span = prof.cpu_awake_idle_mw - prof.cpu_sleep_mw
    awake_frac = 1.0
    if day_s > 0 and span > 0:
        base_mj = phone.monitor.ledger.rail_total_mj("cpu_base")
        awake_frac = (base_mj / day_s - prof.cpu_sleep_mw) / span
        awake_frac = min(max(awake_frac, 0.0), 1.0)
    summary["awake_frac"] = awake_frac
    return {field: summary[field] for field in ENTRY_FIELDS}


# -- the transition/outcome table ----------------------------------------------

class TransitionTable:
    """Per-(equivalence-class, mitigation) kernel outcomes, as data.

    ``entries`` maps ``"kind|name|profile|mitigation|variant|env"``
    (``env`` being the class's merged case environment as canonical
    JSON) to the probe's :data:`ENTRY_FIELDS` dict. The table is plain
    JSON: it rides into shard workers as a ``FuncSpec`` kwarg, and its
    sha256 fingerprint ties checkpoints and reports to the exact
    outcomes they were replayed from.
    """

    def __init__(self, minutes, entries=None):
        self.minutes = float(minutes)
        self.entries = dict(entries or {})

    @staticmethod
    def entry_key(kind, name, profile, mitigation, variant,
                  env_json="{}"):
        return "|".join((kind, name, profile, mitigation, variant,
                         env_json))

    def get(self, kind, name, profile, mitigation, variant,
            env_json="{}"):
        return self.entries.get(
            self.entry_key(kind, name, profile, mitigation, variant,
                           env_json))

    def to_json(self):
        return json.dumps(
            {"schema": PROBE_SCHEMA, "minutes": self.minutes,
             "entries": self.entries},
            sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text):
        data = json.loads(text)
        return cls(data["minutes"], data["entries"])

    def fingerprint(self):
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()


def device_probes(device, mitigations):
    """The probe tuples one device's replay will look up."""
    env = device_env_json(device)
    probes = []
    for mitigation in mitigations:
        for variant in BASE_VARIANTS:
            probes.append(("base", "", device.profile, mitigation,
                           variant, env))
        for name in device.normal_apps:
            for variant in NORMAL_VARIANTS:
                probes.append(("normal", name, device.profile,
                               mitigation, variant, env))
        variants = BUGGY_VARIANTS if device.normal_apps else ("fg",)
        for key in device.buggy_apps:
            for variant in variants:
                probes.append(("buggy", key, device.profile, mitigation,
                               variant, env))
    return probes


def needed_probes(population):
    """The probe set covering the population's sampled device classes.

    Scans up to :data:`PROBE_SCAN_CAP` devices exactly -- a 4-device
    test fleet probes a handful of classes, not a cross product, and
    for larger iid-sampled fleets the class set saturates well inside
    the scan prefix (an unseen tail class falls back to the kernel at
    replay, counted and warned).
    """
    probes = set()
    for index in range(min(population.devices, PROBE_SCAN_CAP)):
        device = population.device(index)
        # Scenario devices replay on the kernel (see _scenario_guard);
        # probing their classes would simulate days nothing reads.
        if _scenario_guard(device.buggy_apps) is not None:
            continue
        probes.update(device_probes(device, population.mitigations))
    return sorted(probes)


def build_table(population, runner=None, verbose=False):
    """Build (or cache-load) the population's transition table.

    Probes fan out through ``runner`` -- the same grid pool, result
    cache and supervisor the shards use -- so a warm cache rebuilds the
    table without running a single kernel day, and a quarantined probe
    simply leaves its entry missing (every device needing it falls
    back to the kernel rather than failing the run).
    """
    from repro.experiments.grid import FuncSpec, GridRunner

    if runner is None:
        runner = GridRunner()
    probes = needed_probes(population)
    specs = [FuncSpec.make(probe_day, kind=kind, name=name,
                           profile=profile, mitigation=mitigation,
                           minutes=population.minutes, variant=variant,
                           env_json=env_json, schema=PROBE_SCHEMA)
             for kind, name, profile, mitigation, variant, env_json
             in probes]
    labels = ["probe:{}".format(TransitionTable.entry_key(*probe))
              for probe in probes]
    if verbose:
        print("fastpath: building transition table ({} probes, {} "
              "sim-min each)".format(len(specs), population.minutes),
              file=sys.stderr)
    results = runner.run(specs, labels=labels)
    entries = {}
    for probe, result in zip(probes, results):
        if result is not None:
            entries[TransitionTable.entry_key(*probe)] = result
    return TransitionTable(population.minutes, entries)


# -- replay: table lookups + perturbation --------------------------------------

def active_seconds(session_count, session_s, day_s):
    """Seconds of the day spent in active sessions, exactly as the
    kernel's scripted alternation (active ``session_s``, idle
    ``session_s``, truncated at day end) spends them."""
    t = 0.0
    active = 0.0
    for __ in range(session_count):
        if t >= day_s:
            break
        active += min(session_s, day_s - t)
        t += 2.0 * session_s
    return active


_CAPACITY_CACHE = {}


def _capacity_mj(profile):
    if profile not in _CAPACITY_CACHE:
        from repro.device.battery import Battery
        from repro.device.profiles import PROFILES

        _CAPACITY_CACHE[profile] = \
            Battery.for_profile(PROFILES[profile]).capacity_mj
    return _CAPACITY_CACHE[profile]


def _scenario_guard(buggy_apps):
    """Fallback reason when a device hosts generated scenario apps.

    Scenario cases carry per-case environment traces and family
    behaviours the transition-table composition was never validated
    against, so their device-days always run on the event kernel.
    """
    from repro.apps.buggy import is_scenario_key

    for key in buggy_apps:
        if is_scenario_key(key):
            return "scenario-app"
    return None


def _device_guard(device, mitigations, table):
    """Why this device cannot be replayed from the table, or None.

    A non-None reason routes the device to the kernel (per-device
    fallback): armed fault plans perturb the day in ways no canonical
    probe captured, scenario apps are kernel-only by design, and a
    missing or crashed probe means the class was never (successfully)
    characterised.
    """
    if device.fault_plan_json:
        return "fault-plan-armed"
    reason = _scenario_guard(device.buggy_apps)
    if reason is not None:
        return reason
    for probe in device_probes(device, mitigations):
        entry = table.entries.get(TransitionTable.entry_key(*probe))
        if entry is None:
            return "missing-probe:{}".format(
                TransitionTable.entry_key(*probe))
        if entry["crashed"]:
            return "crashed-probe:{}".format(
                TransitionTable.entry_key(*probe))
    return None


def _lerp_shared(lo, hi, t):
    """Interpolate two ``{rail: mW}`` shared-rail maps."""
    out = {}
    for rail in set(lo) | set(hi):
        value = lo.get(rail, 0.0) \
            + (hi.get(rail, 0.0) - lo.get(rail, 0.0)) * t
        if value > 0.0:
            out[rail] = value
    return out


def _piecewise(points, target):
    """Piecewise-linear interpolation along the awake-fraction axis.

    ``points`` are ``(awake_frac, system_add_mw, buggy_mw, shared_mw)``
    sorted by awake fraction; ``target`` is clamped to the measured
    span (never extrapolated). Returns ``(system_add, buggy, shared)``.
    """
    if target <= points[0][0]:
        return points[0][1], points[0][2], dict(points[0][3])
    for (a0, s0, b0, sh0), (a1, s1, b1, sh1) in zip(points, points[1:]):
        if target <= a1:
            span = a1 - a0
            u = (target - a0) / span if span > 1e-9 else 1.0
            return (s0 + (s1 - s0) * u, b0 + (b1 - b0) * u,
                    _lerp_shared(sh0, sh1, u))
    return points[-1][1], points[-1][2], dict(points[-1][3])


def _shared_overlap(normal_shared, buggy_shared):
    """Power double-counted by summing solo probes of shared rails.

    Per rail: every solo probe absorbed its holds whole; co-installed,
    overlapping holds run the rail *once* (its union -- approximated by
    the largest single share, holds being near-nested in practice:
    continuous wakelock/GPS bugs against periodic normal apps). Returns
    ``(system_cut, buggy_cut)``: the total over-count, and the part of
    it that solo ``buggy_power`` measurements over-claimed (the union
    is re-split pro rata, matching the ledger's split attribution).
    """
    system_cut = 0.0
    buggy_cut = 0.0
    rails = set()
    for shared in normal_shared + buggy_shared:
        rails.update(shared)
    # Sorted iteration pins the float accumulation order: set order
    # varies with the process hash seed, and with three or more
    # contributing rails that would make the last few ulps of a report
    # machine-dependent. Sorted order is also what the vector engine
    # uses, so scalar and columnar composition agree bit-for-bit.
    for rail in sorted(rails):
        normal_sum = sum(s.get(rail, 0.0) for s in normal_shared)
        buggy_sum = sum(s.get(rail, 0.0) for s in buggy_shared)
        total = normal_sum + buggy_sum
        union = max(s.get(rail, 0.0)
                    for s in normal_shared + buggy_shared)
        if total <= union:
            continue
        system_cut += total - union
        if buggy_sum > 0:
            buggy_cut += buggy_sum - union * (buggy_sum / total)
    return system_cut, buggy_cut


def fast_summary(device, mitigation, table, minutes):
    """One device-day from the table: the fast path's answer to
    :func:`repro.fleet.shard.simulate_device_day`.

    Returns the same flat scalar dict shape, or ``None`` when the
    composition cannot be trusted (caller falls back to the kernel).
    """
    from repro.sim.summary import battery_life_h

    prof = device.profile
    env = device_env_json(device)
    base_idle = table.get("base", "", prof, mitigation, "idle", env)
    base_active = table.get("base", "", prof, mitigation, "active", env)
    base_awake = table.get("base", "", prof, mitigation, "awake", env)
    if base_idle is None or base_active is None or base_awake is None:
        return None
    day_s = minutes * 60.0
    f_canon = active_seconds(CANONICAL["session_count"],
                             CANONICAL["session_s"], day_s) / day_s
    f_dev = active_seconds(device.session_count, device.session_s,
                           day_s) / day_s
    p_idle = base_idle["system_power_mw"]
    p_active = base_active["system_power_mw"]
    session_scale = (f_dev / f_canon) if f_canon > 0 else 0.0
    system = p_idle + max(p_active - p_idle, 0.0) * session_scale

    touches_canon = (f_canon * day_s) / CANONICAL["touch_interval_s"]
    touches_dev = (f_dev * day_s) / device.touch_interval_s
    touch_ratio = (touches_dev / touches_canon) if touches_canon > 0 \
        else 0.0
    # The user rotates the foreground across the session apps, so each
    # receives ~1/k of the touches a solo probe received.
    rotation = len(device.normal_apps) or len(device.buggy_apps) or 1

    def _lerp(lo, hi):
        return lo + (hi - lo) * session_scale

    # Awake fraction the base day reaches at this device's session
    # schedule, and each app's *excess* awake fraction over its probe's
    # base context (a music player holding a wakelock all day has
    # excess ~1; a periodic syncer ~0). Deep sleep freezes app
    # execution, so a mitigated (deferred) buggy app's power is linear
    # in the phone's awake fraction -- which co-installed apps raise.
    awake_sess = _lerp(base_idle["awake_frac"],
                       base_active["awake_frac"])

    def _excess(lo, hi):
        return _lerp(
            max(lo["awake_frac"] - base_idle["awake_frac"], 0.0),
            max(hi["awake_frac"] - base_active["awake_frac"], 0.0))

    buggy_power = 0.0
    disruptions = renewals = deferrals = revocations = 0
    fp_apps = fn_apps = 0
    normal_shared = []  # per-app {rail: solo-probe attributed mW}
    buggy_shared = []
    awake_excess = []  # per-app excess awake fraction (all apps)
    buggy_pairs = []  # mixed-device buggy (lo, hi) entries, probe order
    for name in device.normal_apps:
        idl = table.get("normal", name, prof, mitigation, "idle", env)
        bgp = table.get("normal", name, prof, mitigation, "bg", env)
        act = table.get("normal", name, prof, mitigation, "active",
                        env)
        if idl is None or bgp is None or act is None:
            return None
        # Background cost at the device's screen exposure: linear
        # between the screen-off (idle) and canonical-cycling (bg)
        # measurement points; the active-bg difference is pure touches.
        bg_idle = max(idl["system_power_mw"] - p_idle, 0.0)
        bg_active = max(bgp["system_power_mw"] - p_active, 0.0)
        background = bg_idle + (bg_active - bg_idle) * session_scale
        touch = max(act["system_power_mw"] - bgp["system_power_mw"], 0.0)
        system += max(background, 0.0) + touch * (touch_ratio / rotation)
        normal_shared.append(_lerp_shared(
            idl["shared_mw"], bgp["shared_mw"], session_scale))
        awake_excess.append(_excess(idl, bgp))
        disruptions += act["disruptions"]
        renewals += act["renewals"]
        deferrals += act["deferrals"]
        revocations += act["revocations"]
        fp_apps += act["fp_apps"]
    for key in device.buggy_apps:
        if device.normal_apps:
            lo = table.get("buggy", key, prof, mitigation, "bg_idle", env)
            hi = table.get("buggy", key, prof, mitigation, "bg", env)
            awk = table.get("buggy", key, prof, mitigation, "bg_awake",
                            env)
            if lo is None or hi is None or awk is None:
                return None
            # Power contribution computed after the loop: the exposure
            # parameter depends on every *other* app's awake excess.
            buggy_pairs.append((lo, hi, awk))
            awake_excess.append(_excess(lo, hi))
            entry = hi
        else:
            entry = table.get("buggy", key, prof, mitigation, "fg", env)
            if entry is None:
                return None
            system += max(entry["system_power_mw"] - p_active, 0.0)
            buggy_power += max(entry["buggy_power_mw"], 0.0)
            buggy_shared.append(dict(entry["shared_mw"]))
        disruptions += entry["disruptions"]
        renewals += entry["renewals"]
        deferrals += entry["deferrals"]
        revocations += entry["revocations"]
        fn_apps += entry["fn_apps"]
    p_awake = base_awake["system_power_mw"]
    for position, (lo, hi, awk) in enumerate(buggy_pairs):
        # The (bg_idle, bg, bg_awake) triple measures the case's power
        # at three *awake fractions* (phone asleep nearly all day,
        # canonical screen cycling, held awake all day). A deferred app
        # freezes only while the phone actually suspends, so its power
        # is interpolated piecewise-linearly along that measured awake
        # axis, at the device's awake fraction: the union of its
        # session awake time and every other app's excess awake
        # fraction (combined as independent overlaps). A case whose own
        # wakelock pins every probe awake spans no axis at all; it
        # falls back to the plain session-scale exposure.
        points = sorted(
            ((lo["awake_frac"],
              max(lo["system_power_mw"] - p_idle, 0.0),
              max(lo["buggy_power_mw"], 0.0), lo["shared_mw"]),
             (hi["awake_frac"],
              max(hi["system_power_mw"] - p_active, 0.0),
              max(hi["buggy_power_mw"], 0.0), hi["shared_mw"]),
             (awk["awake_frac"],
              max(awk["system_power_mw"] - p_awake, 0.0),
              max(awk["buggy_power_mw"], 0.0), awk["shared_mw"])),
            key=lambda point: point[0])
        if points[-1][0] - points[0][0] < 0.05:
            sys_add = _lerp(max(lo["system_power_mw"] - p_idle, 0.0),
                            max(hi["system_power_mw"] - p_active, 0.0))
            bug_add = _lerp(max(lo["buggy_power_mw"], 0.0),
                            max(hi["buggy_power_mw"], 0.0))
            shared = _lerp_shared(lo["shared_mw"], hi["shared_mw"],
                                  session_scale)
        else:
            asleep = 1.0 - min(max(awake_sess, 0.0), 1.0)
            for other, excess in enumerate(awake_excess):
                if other == len(device.normal_apps) + position:
                    continue
                asleep *= 1.0 - min(max(excess, 0.0), 1.0)
            target = 1.0 - asleep
            sys_add, bug_add, shared = _piecewise(points, target)
        system += max(sys_add, 0.0)
        buggy_power += max(bug_add, 0.0)
        buggy_shared.append(dict(shared))
    system_cut, buggy_cut = _shared_overlap(normal_shared, buggy_shared)
    system = max(system - system_cut, 0.0)
    buggy_power = max(buggy_power - buggy_cut, 0.0)

    # Zero-mean, sub-seed-deterministic jitter; one factor per device
    # (not per mitigation) so paired ratios like waste reduction stay
    # consistent with the kernel's paired-baseline design.
    factor = 1.0 + JITTER * (2.0 * jitter_unit(device.sub_seed) - 1.0)
    system *= factor
    buggy_power *= factor
    if not (system > 0.0 and system < float("inf")):
        return None
    return {
        "index": device.index,
        "mitigation": mitigation,
        "system_power_mw": system,
        "buggy_power_mw": buggy_power,
        "battery_life_h": battery_life_h(_capacity_mj(prof), system),
        "disruptions": disruptions,
        "buggy_installed": len(device.buggy_apps),
        "normal_installed": len(device.normal_apps),
        "crashed": 0,
        "crash_error": "",
        "faults_applied": 0,
        "renewals": renewals,
        "deferrals": deferrals,
        "revocations": revocations,
        "fp_apps": fp_apps,
        "fn_apps": fn_apps,
    }


# -- shard replay --------------------------------------------------------------

#: Fallback reasons already warned about (structured, one line per
#: distinct reason; every occurrence is still counted). Scoped per
#: *run*, not per process: :class:`repro.fleet.shard.FleetRunner` calls
#: :func:`reset_fallback_warnings` at construction so a second run in
#: the same process warns again instead of staying silent.
_LOGGED_FALLBACKS = set()


def reset_fallback_warnings():
    """Clear the warn-once dedup set (start of a new fleet run)."""
    _LOGGED_FALLBACKS.clear()


def _log_fallback_once(reason, device_index):
    first = reason not in _LOGGED_FALLBACKS
    # The telemetry fallback event shares this one-time-per-reason
    # gate: the stream stays O(reasons), while every occurrence still
    # lands in the shard's fallback counter.
    from repro.telemetry.emit import active_shard_telemetry

    telem = active_shard_telemetry()
    if telem is not None:
        telem.fallback(reason, device_index, emit=first)
    if not first:
        return
    _LOGGED_FALLBACKS.add(reason)
    print(json.dumps(
        {"event": "fastpath_fallback", "reason": reason,
         "first_device": device_index,
         "action": "device rerouted to the kernel path; occurrences "
                   "are counted in the fastpath_fallbacks counter"},
        sort_keys=True), file=sys.stderr)


class _BatchFold:
    """Order-preserving batched stand-in for ``FleetStats`` folding.

    Collects observations per metric across the whole shard, then
    flushes each metric through ``observe_many`` exactly once -- the
    same one-batch-per-metric-per-shard fold the vector engine
    performs, so fast and vector shard stats stay bit-identical (see
    the batch-fold contract in :mod:`repro.fleet.stats`).
    """

    def __init__(self):
        self.stats = FleetStats()
        self._values = {}

    def observe(self, name, value):
        self._values.setdefault(name, []).append(value)

    def count(self, name, amount=1):
        self.stats.count(name, amount)

    def flush(self):
        for name, values in self._values.items():
            self.stats.observe_many(name, values)
        self._values = {}
        return self.stats


def replay_shard(population, start, stop, table,
                 max_crash_records=None, telemetry=None):
    """Replay devices [start, stop) from the table, kernel-fallback
    per device; returns ``({mitigation: FleetStats}, crashes)``.

    The same fold as the kernel path (:func:`repro.fleet.shard.
    _fold_device` drives a batched sink), plus two fast-path counters
    per mitigation: ``fastpath_devices`` and ``fastpath_fallbacks``.
    No per-device record survives the loop. ``telemetry`` is the
    shard's :class:`~repro.telemetry.emit.ShardTelemetry` (or None).
    """
    from repro.apps.buggy import scenario_families
    from repro.fleet.shard import (
        MAX_CRASH_RECORDS,
        _fold_device,
        simulate_device_day,
    )

    if max_crash_records is None:
        max_crash_records = MAX_CRASH_RECORDS
    folds = {name: _BatchFold() for name in population.mitigations}
    crashes = []
    for index in range(start, stop):
        device = population.device(index)
        families = scenario_families(device.buggy_apps)
        reason = _device_guard(device, population.mitigations, table)
        summaries = {}
        if reason is None:
            for mitigation in population.mitigations:
                summary = fast_summary(device, mitigation, table,
                                       population.minutes)
                if summary is None:
                    reason = "non-finite-composition"
                    summaries = {}
                    break
                summaries[mitigation] = summary
        if reason is not None:
            _log_fallback_once(reason, index)
            for mitigation in population.mitigations:
                summaries[mitigation] = simulate_device_day(
                    device, mitigation, population.minutes)
        vanilla_summary = None
        for mitigation in population.mitigations:
            summary = summaries[mitigation]
            if mitigation == "vanilla":
                vanilla_summary = summary
            if summary["crashed"] and len(crashes) < max_crash_records:
                crashes.append({"device": device.index,
                                "mitigation": mitigation,
                                "error": summary["crash_error"]})
            fold = folds[mitigation]
            _fold_device(fold, summary, vanilla_summary)
            fold.count("fastpath_devices")
            if reason is not None:
                fold.count("fastpath_fallbacks")
            for family in families:
                fold.count("scenario:" + family)
            if telemetry is not None:
                telemetry.observe(summary)
                if families:
                    telemetry.observe_families(families)
        if telemetry is not None:
            telemetry.device_done()
    return {name: fold.flush() for name, fold in folds.items()}, crashes


# -- cross-validation ----------------------------------------------------------

def kernel_device_day(population_json, index, mitigation):
    """One kernel device-day as a ``FuncSpec`` target, so
    cross-validation's kernel half fans out and memoises like any other
    grid job."""
    from repro.fleet.shard import simulate_device_day

    population = PopulationSpec.from_json(population_json)
    return simulate_device_day(population.device(index), mitigation,
                               population.minutes)


def validation_population(population, n, seed):
    """An ``n``-device population drawn from the same sampling law as
    ``population`` (same pools, prevalence, minutes, mitigations) but
    an independent seed and no chaos -- the fast path's random exam."""
    return PopulationSpec(
        seed=seed, devices=n, mitigations=population.mitigations,
        minutes=population.minutes, shard_size=population.shard_size,
        buggy_prevalence=population.buggy_prevalence,
        min_apps=population.min_apps, max_apps=population.max_apps,
        profiles=population.profiles, buggy_pool=population.buggy_pool,
        chaos_rate=0.0)


def cross_validate(population, n=50, seed=20190451, runner=None,
                   table=None, tolerances=None):
    """Kernel vs fast path on ``n`` seeded random device-days.

    Returns a plain dict (embedded verbatim in the fleet report's
    provenance block): per-metric worst/mean absolute deltas, the
    tolerance each was judged against, violations (capped detail), and
    an overall ``pass``. Deterministic -- no timestamps, no host facts.
    """
    from repro.experiments.grid import FuncSpec, GridRunner

    if runner is None:
        runner = GridRunner()
    if tolerances is None:
        tolerances = DEFAULT_TOLERANCES
    vpop = validation_population(population, n, seed)
    if table is None:
        table = build_table(vpop, runner=runner)
    population_json = vpop.to_json()
    pairs = [(index, mitigation) for index in range(n)
             for mitigation in vpop.mitigations]
    specs = [FuncSpec.make(kernel_device_day,
                           population_json=population_json,
                           index=index, mitigation=mitigation)
             for index, mitigation in pairs]
    labels = ["xval:{:04d}:{}".format(index, mitigation)
              for index, mitigation in pairs]
    kernel_days = runner.run(specs, labels=labels)

    metrics = {name: {"max_abs_delta": 0.0, "mean_abs_delta": 0.0,
                      "worst": None}
               for name in tolerances}
    violations = []
    compared = fallbacks = crashed = 0
    for (index, mitigation), kernel in zip(pairs, kernel_days):
        if kernel is None or kernel["crashed"]:
            crashed += 1
            continue
        device = vpop.device(index)
        if _device_guard(device, (mitigation,), table) is not None:
            fallbacks += 1
            continue
        fast = fast_summary(device, mitigation, table, vpop.minutes)
        if fast is None:
            fallbacks += 1
            continue
        compared += 1
        for name, tol in tolerances.items():
            delta = abs(fast[name] - kernel[name])
            bound = tol.get("abs", 0.0) + tol.get("rel", 0.0) \
                * abs(kernel[name])
            entry = metrics[name]
            entry["mean_abs_delta"] += delta
            if delta >= entry["max_abs_delta"]:
                entry["max_abs_delta"] = delta
                entry["worst"] = {"device": index,
                                  "mitigation": mitigation,
                                  "kernel": kernel[name],
                                  "fast": fast[name],
                                  "tolerance": bound}
            if delta > bound:
                violations.append(
                    {"device": index, "mitigation": mitigation,
                     "metric": name, "kernel": kernel[name],
                     "fast": fast[name], "delta": delta,
                     "tolerance": bound})
    for entry in metrics.values():
        if compared:
            entry["mean_abs_delta"] /= compared
    return {
        "kind": "fastpath_cross_validation",
        "n": n,
        "seed": seed,
        "minutes": vpop.minutes,
        "mitigations": list(vpop.mitigations),
        "device_days_compared": compared,
        "fallbacks": fallbacks,
        "crashed_skipped": crashed,
        "table_fingerprint": table.fingerprint(),
        "tolerances": tolerances,
        "metrics": metrics,
        "violations": violations[:20],
        "violation_count": len(violations),
        "pass": not violations,
    }
