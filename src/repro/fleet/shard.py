"""Shard execution: simulate a device range, fold it, checkpoint it.

A shard is the unit of dispatch, caching and checkpointing. Each shard
job is an ordinary :class:`~repro.experiments.grid.FuncSpec` calling
:func:`run_shard` with scalars only, so shards fan out through the
existing :class:`~repro.experiments.grid.GridRunner` process pool and
memoise in its content-addressed result cache. Inside the worker every
device-day is simulated, summarised, folded into the shard's
:class:`~repro.fleet.stats.FleetStats`, and *discarded* -- a shard's
return value is O(1) in the number of devices it simulated.

:class:`FleetRunner` drives the shards in index order, writes one
checkpoint file per completed shard (tagged with the population
fingerprint and package version), and on a re-run skips every shard
whose checkpoint is already on disk -- so a killed fleet run resumes
where it stopped and still produces a byte-identical report.
"""

import json
import os
import sys
import tempfile

from repro.experiments.grid import FuncSpec, GridRunner
from repro.fleet.population import PopulationSpec, normal_app_factory
from repro.fleet.stats import FleetStats
from repro.version import __version__

#: Checkpoint schema version; bump on incompatible checkpoint changes.
CHECKPOINT_SCHEMA = 1

#: Default root for per-population checkpoint directories.
DEFAULT_CHECKPOINT_ROOT = os.path.join("results", ".fleet")

#: Cap on per-device crash records carried in one shard summary, so a
#: systematically-crashing population keeps summaries O(1)-ish.
MAX_CRASH_RECORDS = 20


# -- one device-day -----------------------------------------------------------

#: Distinct device-crash reasons already logged; a 10k-device shard
#: with one systematic bug logs one line, not 10k. Scoped per *run*:
#: :class:`FleetRunner` clears it (and the fast path's fallback twin)
#: at construction, so a second run in the same process warns again.
_LOGGED_CRASH_REASONS = set()


def reset_crash_warnings():
    """Clear the warn-once dedup set (start of a new fleet run)."""
    _LOGGED_CRASH_REASONS.clear()


def _log_device_crash_once(index, mitigation, reason):
    if reason in _LOGGED_CRASH_REASONS:
        return
    _LOGGED_CRASH_REASONS.add(reason)
    print("fleet: device {} ({}) crashed during simulation: {} "
          "(logged once per distinct reason; every occurrence is in "
          "the shard's crash records)".format(index, mitigation, reason),
          file=sys.stderr)


def build_device_phone(device, mitigation, extra_overrides=None):
    """Materialise a DeviceSpec as a live phone, apps installed.

    Returns ``(phone, buggy_uids, interactive_uids, injector)``. Shared
    by the kernel path below and the fast path's table probes
    (:mod:`repro.fleet.fastpath`), so a probe day exercises the *exact*
    construction a real device-day does. ``extra_overrides`` are final
    phone-kwargs overrides applied after every case's -- the fast path
    uses them to probe one app under the *merged* environment of a
    multi-case device (a later case's triggering environment overrides
    an earlier one's, which changes whether the earlier bug fires).
    """
    from repro.apps.buggy import resolve_case
    from repro.device.profiles import PROFILES
    from repro.droid.phone import Phone
    from repro.env.network import ServerMode
    from repro.experiments.grid import resolve_mitigation_factory

    factory = resolve_mitigation_factory(mitigation)
    mit = factory() if factory else None
    cases = [resolve_case(key) for key in device.buggy_apps]
    overrides = dict(
        gps_quality=device.gps_quality,
        movement_mps=device.movement_mps,
        network_kind=device.network_kind,
        battery_level=device.battery_level,
    )
    # A buggy app's triggering environment wins over the sampled
    # ambient one (a bug that never triggers measures nothing).
    for case in cases:
        overrides.update(case.phone_kwargs)
    if extra_overrides:
        overrides.update(extra_overrides)
    phone = Phone(profile=PROFILES[device.profile],
                  seed=device.sub_seed % (2 ** 31), mitigation=mit,
                  **overrides)
    for case in cases:
        for server, mode in case.servers.items():
            if not isinstance(mode, ServerMode):
                mode = ServerMode(mode)
            phone.env.network.set_server(server, mode)

    buggy_uids, interactive_uids = [], []
    for case in cases:
        app = phone.install(case.make_app())
        buggy_uids.append(app.uid)
    for name in device.normal_apps:
        app = phone.install(normal_app_factory(name))
        interactive_uids.append(app.uid)

    injector = None
    if device.fault_plan_json:
        from repro.faults.injector import FaultInjector
        from repro.faults.plan import FaultPlan

        injector = FaultInjector(
            phone, FaultPlan.from_json(device.fault_plan_json),
            seed=device.sub_seed % (2 ** 31),
            target_uid=buggy_uids[0] if buggy_uids else None)
        injector.arm()
    return phone, buggy_uids, interactive_uids, injector


def simulate_device_day(device, mitigation, minutes):
    """Run one sampled device-day under one mitigation.

    Returns a flat dict of scalars -- the *only* thing that survives
    the simulation. The Phone, its apps and the event heap are garbage
    the moment this returns, which is what keeps shard memory flat.
    """
    from repro.sim.summary import day_summary

    phone, buggy_uids, interactive_uids, injector = \
        build_device_phone(device, mitigation)
    session_uids = interactive_uids or buggy_uids

    def scripted_day():
        for __ in range(device.session_count):
            yield from phone.user.active_session(
                session_uids, device.session_s,
                touch_interval=device.touch_interval_s)
            yield from phone.user.idle_session(device.session_s)

    phone.sim.spawn(scripted_day(), name="fleet.user")
    mark = phone.energy_mark()
    crashed = 0
    crash_error = ""
    try:
        phone.run_for(minutes=minutes)
    except Exception as exc:  # noqa: BLE001 -- a dead device still reports
        crashed = 1
        crash_error = "{}: {}".format(type(exc).__name__, exc)
        _log_device_crash_once(device.index, mitigation, crash_error)

    summary = day_summary(phone, mark, buggy_uids=buggy_uids,
                          interactive_uids=interactive_uids)
    summary.update({
        "index": device.index,
        "mitigation": mitigation,
        "crashed": crashed,
        "crash_error": crash_error,
        "faults_applied": injector.applied_count if injector else 0,
    })
    return summary


def _fold_device(stats, summary, vanilla_summary):
    """Fold one device-day summary into a mitigation's FleetStats."""
    stats.observe("battery_life_h", summary["battery_life_h"])
    stats.observe("system_power_mw", summary["system_power_mw"])
    stats.observe("buggy_power_mw", summary["buggy_power_mw"])
    stats.observe("disruptions", summary["disruptions"])
    if summary["mitigation"] != "vanilla" and vanilla_summary is not None:
        base = vanilla_summary["buggy_power_mw"]
        if base > 1e-9:
            reduction = 100.0 * (1.0 - summary["buggy_power_mw"] / base)
            stats.observe("waste_reduction_pct", reduction)
        delta_h = summary["battery_life_h"] \
            - vanilla_summary["battery_life_h"]
        stats.observe("battery_delta_h", delta_h)
    if summary["mitigation"] == "leaseos":
        stats.observe("deferrals", summary["deferrals"])
    stats.count("devices")
    for name in ("renewals", "deferrals", "revocations", "fp_apps",
                 "fn_apps", "crashed", "faults_applied", "disruptions"):
        stats.count(name, summary[name])
    stats.count("normal_apps", summary["normal_installed"])
    stats.count("buggy_apps", summary["buggy_installed"])
    stats.count("buggy_devices", 1 if summary["buggy_installed"] else 0)


# -- the shard job ------------------------------------------------------------

def run_shard(population_json, start, stop, mode="kernel",
              table_json=""):
    """Simulate devices [start, stop) under every mitigation.

    Module-level with scalar kwargs only, so it dispatches as a
    :class:`FuncSpec` (process pool + content-addressed cache). Returns
    the shard summary: per-mitigation ``FleetStats`` dicts plus
    bookkeeping -- size O(1) in the device count.

    ``mode="fast"`` replays the shard from the transition table in
    ``table_json`` (:mod:`repro.fleet.fastpath`) instead of running the
    event kernel, falling back to the kernel per device where the
    table cannot be trusted; ``mode="vector"`` composes the whole
    shard columnar over the same table
    (:mod:`repro.fleet.vector`), same per-device fallback rules. The
    extra kwargs also mean table-replayed shard results can never
    collide with kernel ones in the grid's content-addressed cache
    (and ``mode`` separates fast from vector): a kernel dispatch omits
    them entirely, so its cache keys are byte-identical to what they
    always were.
    """
    # Imported lazily: repro.telemetry imports repro.fleet.stats, so a
    # module-level import here would be circular.
    from repro.telemetry.emit import shard_telemetry

    population = PopulationSpec.from_json(population_json)
    # Telemetry rides in on environment variables, never kwargs: the
    # shard's content-addressed cache key must not change when a run
    # happens to be observed (shard_telemetry returns None when off).
    shard_index = start // max(population.shard_size, 1)
    telem = shard_telemetry(population, shard_index, start, stop, mode)
    try:
        if telem is not None:
            telem.started()
        if mode in ("fast", "vector"):
            from repro.fleet.fastpath import TransitionTable, replay_shard

            table = TransitionTable.from_json(table_json)
            if mode == "vector":
                from repro.fleet.vector import replay_shard_vector

                per_mitigation, crashes = replay_shard_vector(
                    population, start, stop, table, telemetry=telem)
            else:
                per_mitigation, crashes = replay_shard(
                    population, start, stop, table, telemetry=telem)
            if telem is not None:
                telem.finished()
            return {
                "schema": CHECKPOINT_SCHEMA,
                "population": population.fingerprint(),
                "start": start,
                "stop": stop,
                "mode": mode,
                "table": table.fingerprint(),
                "stats": {name: stats.to_dict()
                          for name, stats
                          in sorted(per_mitigation.items())},
                "crashes": crashes,
            }
        from repro.apps.buggy import scenario_families

        per_mitigation = {name: FleetStats()
                          for name in population.mitigations}
        crashes = []
        for device in population.devices_in(start, stop):
            vanilla_summary = None
            families = scenario_families(device.buggy_apps)
            for mitigation in population.mitigations:
                summary = simulate_device_day(
                    device, mitigation, population.minutes)
                if mitigation == "vanilla":
                    vanilla_summary = summary
                if summary["crashed"] and len(crashes) < MAX_CRASH_RECORDS:
                    crashes.append({"device": device.index,
                                    "mitigation": mitigation,
                                    "error": summary["crash_error"]})
                _fold_device(per_mitigation[mitigation], summary,
                             vanilla_summary)
                for family in families:
                    per_mitigation[mitigation].count(
                        "scenario:" + family)
                if telem is not None:
                    telem.observe(summary)
                    if families:
                        telem.observe_families(families)
            if telem is not None:
                telem.device_done()
        if telem is not None:
            telem.finished()
        return {
            "schema": CHECKPOINT_SCHEMA,
            "population": population.fingerprint(),
            "start": start,
            "stop": stop,
            "mode": "kernel",
            "stats": {name: stats.to_dict()
                      for name, stats in sorted(per_mitigation.items())},
            # Structured per-device crash records (capped): the
            # aggregate "crashed" counter says how many, these say
            # which and why.
            "crashes": crashes,
        }
    finally:
        if telem is not None:
            telem.close()


# -- checkpointed dispatch ----------------------------------------------------

class FleetRunner:
    """Drives a population's shards through a GridRunner with resume.

    ``checkpoint_dir`` defaults to a per-population directory under
    ``results/.fleet/<fingerprint12>/`` (suffixed ``-fast`` on the fast
    path, so the two execution modes never share checkpoint files), so
    re-running the same spec resumes automatically and different specs
    never collide. Checkpoint files from another population, package
    version, checkpoint schema, execution mode or transition table are
    ignored (and reported), never served.

    ``mode`` selects the device-day executor: ``"kernel"`` (the full
    event loop), ``"fast"`` (transition-table replay,
    :mod:`repro.fleet.fastpath`, with per-device kernel fallback),
    ``"vector"`` (whole-shard columnar composition over the same
    table, :mod:`repro.fleet.vector`, same fallback rules), or
    ``"auto"`` (table-driven at or above
    :data:`~repro.fleet.fastpath.AUTO_MIN_DEVICES` devices -- vector
    when numpy is importable, fast otherwise -- kernel below: the
    table build only amortises over enough device-days).
    """

    def __init__(self, population, runner=None, checkpoint_dir=None,
                 verbose=False, mode="kernel", telemetry_dir=None,
                 service_journal=None):
        if mode not in ("kernel", "fast", "vector", "auto"):
            raise ValueError("unknown fleet mode {!r}".format(mode))
        # New run: re-arm the warn-once logs so this run's first
        # fallback/crash of each kind is reported again (satellite of
        # the vector-engine PR; see reset_crash_warnings).
        from repro.fleet.fastpath import reset_fallback_warnings

        reset_crash_warnings()
        reset_fallback_warnings()
        self.population = population
        self.runner = runner if runner is not None else GridRunner()
        # Same per-run scoping for the supervisor: its stats and its
        # serial-fallback warn-once are lifetime state, and a second
        # FleetRunner sharing the supervisor must not inherit them.
        supervisor = getattr(self.runner, "supervisor", None)
        if supervisor is not None:
            supervisor.begin_run()
        self.requested_mode = mode
        if mode == "auto":
            from repro.fleet.fastpath import AUTO_MIN_DEVICES
            from repro.fleet.stats import _numpy

            if population.devices < AUTO_MIN_DEVICES:
                mode = "kernel"
            else:
                mode = "vector" if _numpy() is not None else "fast"
        self.mode = mode
        if checkpoint_dir is None:
            suffix = {"fast": "-fast", "vector": "-vector"}.get(
                self.mode, "")
            checkpoint_dir = os.path.join(
                DEFAULT_CHECKPOINT_ROOT,
                population.fingerprint()[:12] + suffix)
        self.checkpoint_dir = checkpoint_dir
        self.verbose = verbose
        #: Lazily built transition table (fast mode only): JSON payload
        #: and fingerprint, shared by every shard dispatch this run.
        self._table_json = None
        self.table_fingerprint = None
        self.shards_run = 0
        self.shards_resumed = 0
        #: Shard indices whose on-disk checkpoint was rejected (stale
        #: version/schema/population). A set, not a counter: the same
        #: stale file is probed by pending_shards() *and* merged_stats()
        #: and must count once, not once per probe.
        self.rejected_shards = set()
        #: Shard indices the supervisor quarantined this run (their
        #: checkpoints were deliberately NOT written).
        self.quarantined_shards = []
        #: Shard indices skipped by merged_stats(allow_missing=True).
        self.missing_shards = []
        #: Run telemetry stream (``--telemetry``): created lazily by
        #: the first ``run_shards`` call when ``telemetry_dir`` is set.
        self.telemetry_dir = telemetry_dir
        self.telemetry = None
        #: Root directory for the crash-safe lease-authority journal
        #: (``--service-journal``). Exported to shard workers by
        #: environment variable only, exactly like telemetry, so the
        #: content-addressed shard cache keys never see it.
        self.service_journal = service_journal

    @property
    def checkpoints_rejected(self):
        """Distinct shards whose stale checkpoint was rejected."""
        return len(self.rejected_shards)

    @property
    def shards_quarantined(self):
        return len(self.quarantined_shards)

    # -- checkpoint files --------------------------------------------------

    def _checkpoint_path(self, shard_index):
        return os.path.join(self.checkpoint_dir,
                            "shard_{:06d}.json".format(shard_index))

    def _load_checkpoint(self, shard_index):
        """A valid checkpoint's summary dict, or None."""
        try:
            with open(self._checkpoint_path(shard_index)) as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        summary = payload.get("summary")
        start, stop = self.population.shard_range(shard_index)
        if (payload.get("version") != __version__
                or not isinstance(summary, dict)
                or summary.get("schema") != CHECKPOINT_SCHEMA
                or summary.get("population")
                != self.population.fingerprint()
                or (summary.get("start"), summary.get("stop"))
                != (start, stop)
                or summary.get("mode", "kernel") != self.mode
                or (self.mode in ("fast", "vector")
                    and self.table_fingerprint is not None
                    and summary.get("table")
                    != self.table_fingerprint)):
            self.rejected_shards.add(shard_index)
            if self.verbose:
                print("fleet: ignoring stale checkpoint {}".format(
                    self._checkpoint_path(shard_index)), file=sys.stderr)
            return None
        return summary

    def _write_checkpoint(self, shard_index, summary):
        os.makedirs(self.checkpoint_dir, exist_ok=True)
        payload = {"version": __version__, "summary": summary}
        handle = tempfile.NamedTemporaryFile(
            "w", dir=self.checkpoint_dir, suffix=".tmp", delete=False)
        # Atomic publish: a kill mid-write leaves no torn checkpoint.
        try:
            with handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(handle.name, self._checkpoint_path(shard_index))
        except OSError:
            try:
                os.unlink(handle.name)
            except OSError:
                pass

    # -- execution ---------------------------------------------------------

    def pending_shards(self):
        """Shard indices with no valid checkpoint, ascending."""
        return [index for index in range(self.population.shard_count)
                if self._load_checkpoint(index) is None]

    @staticmethod
    def shard_label(shard_index):
        """The supervision/fault-matching label for one shard job."""
        return "shard:{:06d}".format(shard_index)

    def _ensure_table(self):
        """The fast path's transition table JSON, built on first use.

        Probes dispatch through the same grid runner as the shards, so
        a warm result cache makes this a pure load. Building *before*
        ``pending_shards`` also pins ``table_fingerprint``, which the
        checkpoint validator then enforces: a checkpoint replayed from
        a different table is stale, never served.
        """
        if self._table_json is None:
            from repro.fleet.fastpath import build_table

            table = build_table(self.population, runner=self.runner,
                                verbose=self.verbose)
            self._table_json = table.to_json()
            self.table_fingerprint = table.fingerprint()
        return self._table_json

    def run_shards(self, limit=None):
        """Execute up to ``limit`` pending shards (all by default).

        Shards are dispatched in index order through the grid runner and
        each completed shard's summary is checkpointed *the moment it
        completes* (the runner's ``on_result`` hook), so a kill loses at
        most the in-flight shards (less with the grid cache warm). Under
        a supervised runner the whole pending set is handed over in one
        call -- the supervisor owns concurrency, deadlines and retries
        -- and shards that end in quarantine simply come back without a
        result: their checkpoints are never written (a timed-out shard
        must not publish partial state) and their indices land in
        ``quarantined_shards``. Returns the number of shards executed.
        """
        table_json = self._ensure_table() \
            if self.mode in ("fast", "vector") else None
        pending = self.pending_shards()
        resumed = self.population.shard_count - len(pending)
        self.shards_resumed += resumed
        self._begin_telemetry(resumed)
        if limit is not None:
            pending = pending[:limit]
        population_json = self.population.to_json()
        supervisor = getattr(self.runner, "supervisor", None)
        if supervisor is not None and supervisor.manifest.run_fingerprint \
                == "":
            supervisor.manifest.run_fingerprint = \
                self.population.fingerprint()[:12]
        if supervisor is not None:
            supervisor.telemetry = self.telemetry
        executed = [0]

        def dispatch(batch):
            specs, labels = [], []
            for shard_index in batch:
                start, stop = self.population.shard_range(shard_index)
                if self.mode in ("fast", "vector"):
                    # The extra kwargs separate table-replayed shard
                    # results from kernel ones (and fast from vector)
                    # in the grid cache; a kernel dispatch omits them
                    # so its cache keys never change.
                    specs.append(FuncSpec.make(
                        run_shard, population_json=population_json,
                        start=start, stop=stop, mode=self.mode,
                        table_json=table_json))
                else:
                    specs.append(FuncSpec.make(
                        run_shard, population_json=population_json,
                        start=start, stop=stop))
                labels.append(self.shard_label(shard_index))

            def checkpoint(index, spec, summary):
                shard_index = batch[index]
                self._write_checkpoint(shard_index, summary)
                executed[0] += 1
                if self.telemetry is not None:
                    # Runner-side, so cache hits and supervised retries
                    # are announced exactly once each.
                    self.telemetry.shard_finished(shard_index, summary)
                if self.verbose:
                    print("fleet: shard {}/{} done".format(
                        shard_index + 1, self.population.shard_count),
                        file=sys.stderr)

            summaries = self.runner.run(specs, labels=labels,
                                        on_result=checkpoint)
            for shard_index, summary in zip(batch, summaries):
                if summary is None:
                    self.quarantined_shards.append(shard_index)

        saved_env = self._export_telemetry_env()
        try:
            if supervisor is not None:
                if pending:
                    dispatch(pending)
            else:
                batch_size = max(self.runner.effective_jobs, 1)
                for offset in range(0, len(pending), batch_size):
                    dispatch(pending[offset:offset + batch_size])
        finally:
            self._restore_telemetry_env(saved_env)
            # An interrupt mid-dispatch keeps every checkpoint already
            # streamed out; the counter must reflect them for the
            # partial-run summary the CLI prints on the way down.
            self.shards_run += executed[0]
        return executed[0]

    def _begin_telemetry(self, resumed):
        """Open the run stream on the first ``run_shards`` call."""
        if self.telemetry_dir is None or self.telemetry is not None:
            return
        from repro.telemetry.emit import RunTelemetry

        self.telemetry = RunTelemetry(
            self.telemetry_dir, self.population.fingerprint()[:12])
        self.telemetry.run_started(self.population, self.mode,
                                   self.requested_mode,
                                   shards_resumed=resumed)

    def _export_telemetry_env(self):
        """Export the stream location for shard workers (forked per
        batch/attempt, so they inherit it); returns the saved values.

        Environment, not kwargs: a telemetry kwarg on ``run_shard``
        would change every shard's content-addressed cache key."""
        if self.telemetry is None and self.service_journal is None:
            return None
        from repro.service.storage import ENV_JOURNAL
        from repro.telemetry.emit import ENV_DIR, ENV_FP

        saved = {key: os.environ.get(key)
                 for key in (ENV_DIR, ENV_FP, ENV_JOURNAL)}
        if self.telemetry is not None:
            os.environ[ENV_DIR] = self.telemetry.directory
            os.environ[ENV_FP] = self.telemetry.fp
        if self.service_journal is not None:
            os.environ[ENV_JOURNAL] = self.service_journal
        return saved

    @staticmethod
    def _restore_telemetry_env(saved):
        if saved is None:
            return
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value

    def merged_stats(self, allow_missing=False):
        """Fold every shard checkpoint, in index order, into one
        FleetStats per mitigation.

        Raises if any shard is missing, unless ``allow_missing`` is
        true (the graceful-degradation path), in which case missing
        shards are skipped and recorded in ``missing_shards``.
        """
        merged = {name: FleetStats() for name in self.population.mitigations}
        self.missing_shards = []
        for shard_index in range(self.population.shard_count):
            summary = self._load_checkpoint(shard_index)
            if summary is None:
                if allow_missing:
                    self.missing_shards.append(shard_index)
                    continue
                raise RuntimeError(
                    "shard {} has no valid checkpoint; run run_shards() "
                    "to completion first".format(shard_index))
            for name, data in summary["stats"].items():
                merged[name] = merged[name].merge(FleetStats.from_dict(data))
        return merged

    def run_summary(self):
        """Always-surfaced execution accounting for the final report.

        Counts stale-checkpoint rejections explicitly: a rejected
        checkpoint means silent recomputation, and an operator reading
        a quiet run's summary must see that it happened.
        """
        summary = {
            "mode": self.mode,
            "shards_total": self.population.shard_count,
            "shards_run": self.shards_run,
            "shards_resumed": self.shards_resumed,
            "checkpoints_rejected": self.checkpoints_rejected,
            "shards_quarantined": self.shards_quarantined,
        }
        if self.mode in ("fast", "vector"):
            summary["table_fingerprint"] = self.table_fingerprint or ""
        return summary

    def run(self, limit=None, allow_missing=False):
        """Run (or resume) the fleet; returns merged stats when
        complete, or None if ``limit`` stopped the run early.
        ``allow_missing=True`` degrades instead: merged stats over
        whatever checkpoints exist (missing shards recorded in
        ``missing_shards``)."""
        self.run_shards(limit=limit)
        if self.pending_shards() and not allow_missing:
            return None
        return self.merged_stats(allow_missing=allow_missing)
