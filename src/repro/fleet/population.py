"""Seeded population sampling: who the fleet's devices are.

A :class:`PopulationSpec` is pure data -- JSON round-trippable, hashable
by fingerprint -- describing *how to sample* a heterogeneous population
of device-days: device hardware drawn from
:mod:`repro.device.profiles`, an app mix of normal archetypes plus
buggy Table-5 apps at a configurable prevalence, per-device user-trace
and environment parameters, and (optionally) a sampled
:class:`~repro.faults.plan.FaultPlan` arming chaos on a fraction of the
fleet.

Determinism contract:

- ``spec.device(i)`` depends only on ``(spec, i)``: the per-device
  sub-seed is ``sha256("{population_seed}:{i}")``, so any worker can
  materialise any device independently, in any order, on any Python
  version (no reliance on process-global RNG state or hash seeds).
- different device indices get independent streams: each device builds
  its own ``random.Random(sub_seed)`` and nothing else reads it.
- ``spec.fingerprint()`` hashes the canonical JSON of every sampling
  parameter, so checkpoints and caches can refuse populations that
  drifted.
"""

import hashlib
import json
import random

from dataclasses import asdict, dataclass

#: Normal-app archetypes a device can sample, name -> factory path
#: semantics. Factories resolve lazily so importing this module stays
#: cheap and specs never capture live objects.
NORMAL_ARCHETYPES = (
    "runkeeper", "spotify", "haven", "nextcloud", "k9-fixed",
    "podcast", "messenger", "browser", "maps",
)

#: Buggy-app pool: by default every Table 5 case is in play.
from repro.apps.buggy import CASES_BY_KEY  # noqa: E402  (registry is data)

BUGGY_POOL = tuple(sorted(CASES_BY_KEY))

#: Per-catalog scenario pool memo: catalog canonical JSON + family
#: weights -> (entry keys, cumulative weights, total). Instantiating a
#: catalog registers its cases process-wide, so workers that receive a
#: spec with ``catalog_json`` can resolve scenario keys like any other
#: case key.
_SCENARIO_POOLS = {}


def scenario_pool(catalog_json, family_weights=()):
    """(keys, cumulative_weights, total) for weighted scenario draws.

    Families absent from ``family_weights`` keep weight 1.0, so an
    empty mapping is a uniform draw over catalog entries. Instantiates
    (and registers) the catalog on first use per process.
    """
    memo_key = (catalog_json, tuple(family_weights))
    pool = _SCENARIO_POOLS.get(memo_key)
    if pool is None:
        from repro.scenarios.catalog import ScenarioCatalog

        catalog = ScenarioCatalog.from_json(catalog_json)
        catalog.instantiate()
        weights = dict(family_weights)
        keys, cumulative = [], []
        total = 0.0
        for index, entry in enumerate(catalog.entries):
            weight = float(weights.get(entry["family"], 1.0))
            if weight < 0:
                raise ValueError("negative weight for family {!r}".format(
                    entry["family"]))
            total += weight
            keys.append(catalog.entry_key(index))
            cumulative.append(total)
        if total <= 0:
            raise ValueError("scenario family weights sum to zero")
        pool = (tuple(keys), tuple(cumulative), total)
        _SCENARIO_POOLS[memo_key] = pool
    return pool


def _draw_scenario(u, pool):
    """Map one uniform draw ``u`` in [0, 1) to a scenario key."""
    keys, cumulative, total = pool
    target = u * total
    for key, bound in zip(keys, cumulative):
        if target < bound:
            return key
    return keys[-1]


def normal_app_factory(name):
    """Materialise one normal archetype by name (worker-side)."""
    from repro.apps.normal.archetypes import K9MailFixed, PodcastPlayer
    from repro.apps.normal.background import (
        Haven,
        NextcloudSync,
        RunKeeper,
        Spotify,
    )
    from repro.apps.normal.interactive import InteractiveApp

    factories = {
        "runkeeper": RunKeeper,
        "spotify": Spotify,
        "haven": Haven,
        "nextcloud": NextcloudSync,
        "k9-fixed": K9MailFixed,
        "podcast": PodcastPlayer,
        "messenger": lambda: InteractiveApp(
            "Messenger", touch_compute_s=0.15, touch_payload_s=0.3,
            sync_interval_s=90.0),
        "browser": lambda: InteractiveApp(
            "Browser", touch_compute_s=0.5, touch_payload_s=0.8,
            sync_interval_s=None),
        "maps": lambda: InteractiveApp(
            "Maps", touch_compute_s=0.35, touch_payload_s=0.6,
            sync_interval_s=300.0),
    }
    return factories[name]()


@dataclass(frozen=True)
class DeviceSpec:
    """One sampled device-day, fully declarative.

    Everything is a JSON scalar or a tuple of scalars, so a DeviceSpec
    crosses process boundaries inside a shard job without pickling any
    live object.
    """

    index: int
    sub_seed: int
    profile: str
    normal_apps: tuple  # archetype names, install order
    buggy_apps: tuple  # Table 5 case keys, install order
    gps_quality: float
    movement_mps: float
    network_kind: str
    battery_level: float
    session_count: int
    session_s: float
    touch_interval_s: float
    fault_plan_json: str = ""

    def as_dict(self):
        data = asdict(self)
        data["normal_apps"] = list(self.normal_apps)
        data["buggy_apps"] = list(self.buggy_apps)
        return data


@dataclass(frozen=True)
class PopulationSpec:
    """The sampling law for a whole fleet of device-days."""

    seed: int = 2019
    devices: int = 1000
    #: Mitigations compared; "vanilla" is always run (it is the paired
    #: per-device baseline for waste-reduction quantiles).
    mitigations: tuple = ("vanilla", "leaseos")
    #: Simulated minutes per device-day.
    minutes: float = 30.0
    #: Devices per shard -- part of the spec because shard boundaries
    #: determine the float merge tree and therefore the exact report
    #: bytes (see docs/fleet.md).
    shard_size: int = 50
    #: Probability that each app slot on a device hosts a buggy app.
    buggy_prevalence: float = 0.25
    #: Inclusive bounds on the number of app slots per device.
    min_apps: int = 3
    max_apps: int = 7
    #: Device profiles sampled uniformly from this pool.
    profiles: tuple = ()
    #: Buggy cases sampled uniformly from this pool.
    buggy_pool: tuple = BUGGY_POOL
    #: Fraction of devices that get a sampled FaultPlan armed.
    chaos_rate: float = 0.0
    #: FaultPlan.sample events-per-hour when chaos is armed.
    chaos_events_per_hour: float = 6.0
    #: Canonical JSON of a :class:`~repro.scenarios.catalog.
    #: ScenarioCatalog` whose generated cases join the sampling pool
    #: ("" = none). Kept as the canonical string so the spec stays pure
    #: data and the catalog fingerprint is part of the population
    #: fingerprint.
    catalog_json: str = ""
    #: Probability that each app slot hosts a generated scenario app
    #: (drawn before the buggy-pool draw; requires ``catalog_json``).
    scenario_prevalence: float = 0.0
    #: Per-family draw weights, ``(("family", weight), ...)``; families
    #: not listed keep weight 1.0, so () draws entries uniformly.
    family_weights: tuple = ()

    def __post_init__(self):
        if not self.profiles:
            from repro.device.profiles import PROFILES

            object.__setattr__(self, "profiles", tuple(sorted(PROFILES)))
        if "vanilla" not in self.mitigations:
            object.__setattr__(
                self, "mitigations", ("vanilla",) + tuple(self.mitigations))
        if self.devices < 1:
            raise ValueError("population needs at least one device")
        if not 1 <= self.min_apps <= self.max_apps:
            raise ValueError("need 1 <= min_apps <= max_apps")
        if self.shard_size < 1:
            raise ValueError("shard_size must be >= 1")
        if self.scenario_prevalence and not self.catalog_json:
            raise ValueError(
                "scenario_prevalence requires a catalog_json")
        if self.family_weights:
            object.__setattr__(self, "family_weights", tuple(
                (str(name), float(weight))
                for name, weight in self.family_weights))
        if self.catalog_json:
            # Validates the catalog and registers its cases eagerly so
            # sampling never races imports inside worker threads.
            scenario_pool(self.catalog_json, self.family_weights)

    # -- serialisation -----------------------------------------------------

    def to_json(self):
        """Canonical JSON: key-sorted, compact -- the fingerprint input.

        Catalog-free specs omit the scenario fields entirely, so their
        canonical bytes (and therefore fingerprints, checkpoint
        directories and cache keys) are identical to those of builds
        that predate scenario support.
        """
        data = asdict(self)
        for name in ("mitigations", "profiles", "buggy_pool"):
            data[name] = list(data[name])
        if self.catalog_json:
            data["family_weights"] = [
                list(pair) for pair in self.family_weights]
        else:
            del data["catalog_json"]
            del data["scenario_prevalence"]
            del data["family_weights"]
        return json.dumps(data, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text):
        data = json.loads(text)
        for name in ("mitigations", "profiles", "buggy_pool"):
            data[name] = tuple(data[name])
        if "family_weights" in data:
            data["family_weights"] = tuple(
                tuple(pair) for pair in data["family_weights"])
        return cls(**data)

    def fingerprint(self):
        """sha256 of the canonical JSON -- the population's identity."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    # -- sharding ----------------------------------------------------------

    @property
    def shard_count(self):
        return (self.devices + self.shard_size - 1) // self.shard_size

    def shard_range(self, shard_index):
        """The [start, stop) device range of one shard."""
        if not 0 <= shard_index < self.shard_count:
            raise IndexError("shard {} out of range (0..{})".format(
                shard_index, self.shard_count - 1))
        start = shard_index * self.shard_size
        return start, min(start + self.shard_size, self.devices)

    # -- sampling ----------------------------------------------------------

    def sub_seed(self, index):
        """Deterministic, platform-independent per-device sub-seed."""
        token = "{}:{}".format(self.seed, index).encode("utf-8")
        return int.from_bytes(hashlib.sha256(token).digest()[:8], "big")

    def device(self, index):
        """Materialise device ``index``'s :class:`DeviceSpec`."""
        if not 0 <= index < self.devices:
            raise IndexError("device {} out of range".format(index))
        sub_seed = self.sub_seed(index)
        rng = random.Random(sub_seed)
        profile = rng.choice(list(self.profiles))
        slots = rng.randint(self.min_apps, self.max_apps)
        # Catalog-free specs take zero scenario draws, keeping their
        # device streams byte-identical to pre-scenario builds.
        pool = scenario_pool(self.catalog_json, self.family_weights) \
            if self.catalog_json else None
        normal, buggy = [], []
        for __ in range(slots):
            if pool is not None \
                    and rng.random() < self.scenario_prevalence:
                buggy.append(_draw_scenario(rng.random(), pool))
            elif self.buggy_pool and rng.random() < self.buggy_prevalence:
                buggy.append(rng.choice(list(self.buggy_pool)))
            else:
                normal.append(rng.choice(list(NORMAL_ARCHETYPES)))
        # Duplicate installs are illegal (one uid per app name); keep
        # first occurrences, preserving sampled order.
        normal = tuple(dict.fromkeys(normal))
        buggy = tuple(dict.fromkeys(buggy))
        fault_plan_json = ""
        if self.chaos_rate > 0 and rng.random() < self.chaos_rate:
            from repro.faults.plan import FaultPlan

            plan = FaultPlan.sample(
                sub_seed % (2 ** 31), horizon_s=self.minutes * 60.0,
                events_per_hour=self.chaos_events_per_hour)
            fault_plan_json = plan.to_json()
        return DeviceSpec(
            index=index,
            sub_seed=sub_seed,
            profile=profile,
            normal_apps=normal,
            buggy_apps=buggy,
            gps_quality=round(rng.uniform(0.55, 0.98), 3),
            movement_mps=round(rng.choice((0.0, 0.0, 0.8, 1.4)), 3),
            network_kind=rng.choice(("wifi", "wifi", "cellular")),
            battery_level=round(rng.uniform(0.5, 1.0), 3),
            session_count=rng.randint(1, 3),
            session_s=round(rng.uniform(120.0, 600.0), 1),
            touch_interval_s=round(rng.uniform(6.0, 45.0), 1),
            fault_plan_json=fault_plan_json,
        )

    def devices_in(self, start, stop):
        """Yield DeviceSpecs for a device-index range."""
        for index in range(start, stop):
            yield self.device(index)

    def sample_columns(self, start, stop):
        """Batch-sample ``[start, stop)`` into :class:`DeviceColumns`.

        Draw-for-draw identical to :meth:`device` -- same sub-seed
        derivation, same ``random.Random`` call sequence -- but emits
        struct-of-arrays columns instead of one frozen dataclass per
        device, and records chaos arming as a boolean instead of
        sampling the (expensive) fault-plan JSON.  Devices whose
        ``has_fault`` flag is set must be materialised through
        :meth:`device` when the plan itself is needed; the vector
        engine only needs to know they exist so it can route them to
        the scalar fallback.
        """
        if not 0 <= start <= stop <= self.devices:
            raise IndexError("range [{}, {}) out of population".format(
                start, stop))
        columns = DeviceColumns()
        # The loop below is the vector engine's per-device floor, so
        # every draw is inlined: ``choice``/``randint`` reduce to
        # ``_randbelow`` (rejection-sampled ``getrandbits``, the
        # documented CPython algorithm ``device()`` already relies on
        # for cross-version stability) and ``uniform(a, b)`` is
        # literally ``a + (b - a) * random()``. The column parity test
        # (sample_columns == device, thousands of devices) pins the
        # draw-for-draw equivalence.
        profiles = list(self.profiles)
        buggy_pool = list(self.buggy_pool)
        normal_pool = list(NORMAL_ARCHETYPES)
        n_prof, k_prof = len(profiles), len(profiles).bit_length()
        n_bug, k_bug = len(buggy_pool), len(buggy_pool).bit_length()
        n_norm, k_norm = len(normal_pool), len(normal_pool).bit_length()
        # uniform(a, b) is a + (b - a) * random(); the spans are
        # precomputed with the same subtraction so the products are
        # bit-identical (0.98 - 0.55 is not the literal 0.43).
        gps_span = 0.98 - 0.55
        batt_span = 1.0 - 0.5
        sess_span = 600.0 - 120.0
        touch_span = 45.0 - 6.0
        prevalence = self.buggy_prevalence
        chaos = self.chaos_rate
        scen_pool = scenario_pool(self.catalog_json, self.family_weights) \
            if self.catalog_json else None
        scen_prevalence = self.scenario_prevalence
        seed = self.seed
        min_apps = self.min_apps
        app_width = self.max_apps - self.min_apps + 1
        k_apps = app_width.bit_length()
        movement_pool = (0.0, 0.0, 0.8, 1.4)
        network_pool = ("wifi", "wifi", "cellular")
        sha256 = hashlib.sha256
        from_bytes = int.from_bytes
        fromkeys = dict.fromkeys
        rng = random.Random()
        reseed = rng.seed
        grb = rng.getrandbits
        uniform = rng.random
        ap_index = columns.index.append
        ap_sub_seed = columns.sub_seed.append
        ap_profile = columns.profile.append
        ap_normal = columns.normal_apps.append
        ap_buggy = columns.buggy_apps.append
        ap_gps = columns.gps_quality.append
        ap_move = columns.movement_mps.append
        ap_net = columns.network_kind.append
        ap_batt = columns.battery_level.append
        ap_sess_n = columns.session_count.append
        ap_sess_s = columns.session_s.append
        ap_touch = columns.touch_interval_s.append
        ap_fault = columns.has_fault.append
        for index in range(start, stop):
            sub_seed = from_bytes(
                sha256(b"%d:%d" % (seed, index)).digest()[:8], "big")
            reseed(sub_seed)
            r = grb(k_prof)
            while r >= n_prof:
                r = grb(k_prof)
            profile = profiles[r]
            r = grb(k_apps)
            while r >= app_width:
                r = grb(k_apps)
            slots = min_apps + r
            normal, buggy = [], []
            for __ in range(slots):
                if scen_pool is not None and uniform() < scen_prevalence:
                    buggy.append(_draw_scenario(uniform(), scen_pool))
                elif n_bug and uniform() < prevalence:
                    r = grb(k_bug)
                    while r >= n_bug:
                        r = grb(k_bug)
                    buggy.append(buggy_pool[r])
                else:
                    r = grb(k_norm)
                    while r >= n_norm:
                        r = grb(k_norm)
                    normal.append(normal_pool[r])
            has_fault = bool(chaos > 0 and uniform() < chaos)
            ap_index(index)
            ap_sub_seed(sub_seed)
            ap_profile(profile)
            ap_normal(tuple(fromkeys(normal)))
            ap_buggy(tuple(fromkeys(buggy)))
            # gps/battery never feed the columnar composition, so
            # device()'s rounding is applied lazily in spec().
            ap_gps(0.55 + gps_span * uniform())
            r = grb(3)
            while r >= 4:
                r = grb(3)
            ap_move(movement_pool[r])
            r = grb(2)
            while r >= 3:
                r = grb(2)
            ap_net(network_pool[r])
            ap_batt(0.5 + batt_span * uniform())
            r = grb(2)
            while r >= 3:
                r = grb(2)
            ap_sess_n(1 + r)
            ap_sess_s(round(120.0 + sess_span * uniform(), 1))
            ap_touch(round(6.0 + touch_span * uniform(), 1))
            ap_fault(has_fault)
        return columns


class DeviceColumns:
    """Struct-of-arrays view of a sampled device range.

    Parallel lists, one row per device, in device-index order.  This is
    the input format of the vector engine (:mod:`repro.fleet.vector`):
    scalar columns become numpy arrays, app tuples key equivalence
    classes.  ``has_fault`` stands in for ``fault_plan_json`` -- the
    plan is only sampled when a device actually falls back to the
    kernel path.
    """

    __slots__ = (
        "index", "sub_seed", "profile", "normal_apps", "buggy_apps",
        "gps_quality", "movement_mps", "network_kind", "battery_level",
        "session_count", "session_s", "touch_interval_s", "has_fault",
    )

    def __init__(self):
        for name in self.__slots__:
            setattr(self, name, [])

    def __len__(self):
        return len(self.index)

    def spec(self, row, population):
        """Materialise row ``row`` as a :class:`DeviceSpec`.

        Fault-armed rows delegate to :meth:`PopulationSpec.device` (the
        plan JSON must come from the canonical sampler); everything
        else is rebuilt directly from the columns, which hold exactly
        the values ``device()`` would have drawn.
        """
        if self.has_fault[row]:
            return population.device(self.index[row])
        return DeviceSpec(
            index=self.index[row],
            sub_seed=self.sub_seed[row],
            profile=self.profile[row],
            normal_apps=self.normal_apps[row],
            buggy_apps=self.buggy_apps[row],
            gps_quality=round(self.gps_quality[row], 3),
            movement_mps=self.movement_mps[row],
            network_kind=self.network_kind[row],
            battery_level=round(self.battery_level[row], 3),
            session_count=self.session_count[row],
            session_s=self.session_s[row],
            touch_interval_s=self.touch_interval_s[row],
            fault_plan_json="",
        )
