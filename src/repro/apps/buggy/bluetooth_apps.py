"""Extension case: a leaked Bluetooth discovery scan.

Not part of the paper's Table 5 (its evaluation covers wakelock, screen,
Wi-Fi, GPS and sensors), but Table 1 explicitly lists Bluetooth among
the lease-manageable resources with sensor-like semantics. This module
exercises that row end to end: a Gadgetbridge-style companion app starts
device discovery to find its watch, the watch is absent, and the
discovery scan (the expensive Bluetooth mode) is never cancelled.
"""

from repro.apps.spec import CaseSpec
from repro.apps.buggy.registry import register_cases
from repro.core.behavior import BehaviorType
from repro.droid.app import App
from repro.droid.resources import ResourceType


class WatchCompanion(App):
    """Keeps Bluetooth discovery running for a watch that never appears."""

    app_name = "WatchCompanion"
    category = "wearable"

    PAIRING_WINDOW_S = 25.0

    def on_start(self):
        self.found_watch = False
        self.session = self.ctx.bluetooth.start_discovery(
            self, self._on_result
        )
        # The intended flow cancels discovery when pairing times out; the
        # buggy path only flips the UI state and leaks the scan.
        self.ctx.alarms.set(self.uid, self.PAIRING_WINDOW_S,
                            self._pairing_timeout)

    def _on_result(self, result):
        # Every discovered device is compared against the paired watch's
        # address; the watch is away, so nothing ever matches.
        pass

    def _pairing_timeout(self):
        # BUG: should call self.session.close(); instead just gives up.
        self.session.set_consumer_active(False)


EXTRA_CASES = register_cases([
    CaseSpec(
        key="watchcompanion-bt",
        app_factory=WatchCompanion,
        category="wearable",
        resource=ResourceType.BLUETOOTH,
        behavior=BehaviorType.LHB,
        description="Bluetooth discovery scan leaked after pairing "
                    "timeout (extension case, not in the paper's Table 5)",
        paper_power={},
    ),
], extension=True)
