"""One registration path for every buggy-app case.

Three tiers share it:

- **Table 5 cases** (the paper's 20 apps): registered by the six
  per-resource modules at import time, exported as ``BUGGY_CASES`` /
  ``CASES_BY_KEY`` from :mod:`repro.apps.buggy`. Their key set is
  load-bearing -- ``repro.fleet.population.BUGGY_POOL`` is
  ``sorted(CASES_BY_KEY)`` and feeds every fleet fingerprint -- so only
  the canonical Table 5 modules may register into this tier.
- **Extension cases** (audio/bluetooth, not in Table 5): resolvable by
  key but deliberately kept out of ``CASES_BY_KEY`` so the fleet
  sampling pool (and with it every existing population fingerprint)
  never changes.
- **Scenario cases** (:mod:`repro.scenarios`): generated at runtime
  from a :class:`~repro.scenarios.catalog.ScenarioCatalog`. Keys carry
  the :data:`SCENARIO_PREFIX` so every layer (shard construction, the
  fast/vector guards, telemetry) can recognise them without importing
  the generator; re-registration with an identical spec is a no-op,
  with a *different* spec an error (two catalogs must not silently
  fight over one key).

:func:`resolve_case` is the single lookup every consumer
(:func:`repro.fleet.shard.build_device_phone`,
:func:`repro.experiments.grid.resolve_case`, the fast-path probes)
goes through.
"""

#: Key prefix marking a generated scenario case. Population specs may
#: carry these keys in ``DeviceSpec.buggy_apps``; the fast/vector
#: engines route any device holding one to the kernel.
SCENARIO_PREFIX = "scenario:"

#: Table 5 rows, in the paper's order (cpu, screen, gps, sensor).
BUGGY_CASES = []

#: Table 5 rows by key -- the fleet sampling pool's source of truth.
CASES_BY_KEY = {}

#: Extension cases by key (audio/bluetooth): resolvable, never pooled.
EXTENSION_CASES_BY_KEY = {}

#: Generated scenario cases by key, populated by catalog instantiation.
SCENARIO_CASES_BY_KEY = {}


def register_case(case, extension=False):
    """Register one :class:`~repro.apps.spec.CaseSpec`; returns it.

    Usable as a decorator on zero-arg case factories too (see
    :func:`registered`), but the per-resource modules simply call it on
    each literal spec. Duplicate keys are an error: every case key must
    resolve to exactly one spec.
    """
    if case.key.startswith(SCENARIO_PREFIX):
        raise ValueError(
            "case key {!r} uses the reserved scenario prefix; register "
            "generated cases via register_scenario_cases".format(case.key))
    target = EXTENSION_CASES_BY_KEY if extension else CASES_BY_KEY
    if case.key in CASES_BY_KEY or case.key in EXTENSION_CASES_BY_KEY:
        raise ValueError("duplicate case key {!r}".format(case.key))
    target[case.key] = case
    if not extension:
        BUGGY_CASES.append(case)
    return case


def register_cases(cases, extension=False):
    """Register a module's case list through the shared path."""
    for case in cases:
        register_case(case, extension=extension)
    return cases


def register_scenario_cases(cases, fingerprint):
    """Register generated scenario cases (idempotent per fingerprint).

    ``fingerprint`` is the owning catalog's sha256: re-registering the
    same key from the same catalog build is a no-op (workers
    re-materialise catalogs per process), while a key collision across
    *different* catalogs raises -- silent replacement would let two
    populations disagree about what a key simulates.
    """
    for case in cases:
        if not case.key.startswith(SCENARIO_PREFIX):
            raise ValueError(
                "scenario case key {!r} must start with {!r}".format(
                    case.key, SCENARIO_PREFIX))
        existing = SCENARIO_CASES_BY_KEY.get(case.key)
        if existing is not None:
            if existing[1] != fingerprint:
                raise ValueError(
                    "scenario key {!r} already registered by catalog "
                    "{}; refusing to overwrite with catalog {}".format(
                        case.key, existing[1][:12], fingerprint[:12]))
            continue
        SCENARIO_CASES_BY_KEY[case.key] = (case, fingerprint)
    return cases


def is_scenario_key(key):
    """True for keys minted by the scenario generator."""
    return key.startswith(SCENARIO_PREFIX)


def scenario_families(buggy_apps):
    """Sorted distinct scenario family names in a buggy-app key tuple.

    Key layout (see :func:`repro.scenarios.catalog.scenario_key`):
    ``scenario:<family>:<resource>:<index>``; non-scenario keys
    contribute nothing.
    """
    families = {key.split(":", 2)[1] for key in buggy_apps
                if key.startswith(SCENARIO_PREFIX)}
    return sorted(families)


def resolve_case(key):
    """The one lookup for any buggy-case key, whatever its tier."""
    case = CASES_BY_KEY.get(key)
    if case is not None:
        return case
    case = EXTENSION_CASES_BY_KEY.get(key)
    if case is not None:
        return case
    entry = SCENARIO_CASES_BY_KEY.get(key)
    if entry is not None:
        return entry[0]
    if key.startswith(SCENARIO_PREFIX):
        raise KeyError(
            "scenario case {!r} is not registered in this process; "
            "instantiate its catalog first (populations carrying "
            "catalog_json do this automatically)".format(key))
    raise KeyError(key)
