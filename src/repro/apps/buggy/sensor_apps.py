"""Sensor energy-bug cases: Table 5 rows 19-20.

- TapAndTurn: "polls sensors even when screen is off" -- the orientation
  sensor stays registered while its rotate-icon overlay can never be
  shown or clicked (LUB). This is also the paper's custom-utility
  example (Fig. 6): the app can report ``100 * clicks / rotations``.
- Riot: accelerometer registered by the messaging app with nothing
  consuming the readings (LUB).
"""

from repro.apps.spec import CaseSpec
from repro.apps.buggy.registry import register_cases
from repro.core.behavior import BehaviorType
from repro.core.utility import UtilityCounter
from repro.droid.app import App
from repro.droid.resources import ResourceType
from repro.droid.sensors import SensorType


class OrientationEvent:
    """One rotation event and whether the user clicked the icon."""

    __slots__ = ("time", "click")

    def __init__(self, time, click):
        self.time = time
        self.click = click


class ClickUtility(UtilityCounter):
    """The Fig. 6 counter: 100 * clicks / rotations (50 when no events).

    Scored over the most recent rotations so the hint tracks *current*
    user engagement, the way a real implementation would drain its event
    list between readings.
    """

    WINDOW_EVENTS = 60

    def __init__(self):
        self.events = []

    def get_score(self):
        if not self.events:
            return 50.0
        recent = self.events[-self.WINDOW_EVENTS:]
        clicks = sum(1 for e in recent if e.click)
        # Bound memory like a real app would.
        self.events = self.events[-10 * self.WINDOW_EVENTS:]
        return 100.0 * clicks / len(recent)

    def drain(self):
        self.events = []


class TapAndTurn(App):
    app_name = "TapAndTurn"
    category = "tool"

    def __init__(self, use_custom_utility=False):
        super().__init__()
        self.use_custom_utility = use_custom_utility
        self.utility = ClickUtility()

    def on_start(self):
        self.registration = self.ctx.sensors.register_listener(
            self, SensorType.ORIENTATION, self._on_rotation, rate_hz=5.0
        )
        if self.use_custom_utility:
            self.set_utility_counter(ResourceType.SENSOR, self.utility)

    def _on_rotation(self, reading):
        # The overlay icon would appear here; with the screen off nobody
        # ever clicks it.
        clicked = self.ctx.display.screen_on and self.rng.random() < 0.55
        self.utility.events.append(
            OrientationEvent(self.ctx.sim.now, clicked)
        )
        if clicked:
            self.post_ui_update()


class Riot(App):
    app_name = "Riot"
    category = "messaging"

    def on_start(self):
        # Accelerometer registered at a high rate for a shake feature
        # nobody uses; readings go nowhere.
        self.registration = self.ctx.sensors.register_listener(
            self, SensorType.ACCELEROMETER, self._on_reading, rate_hz=10.0
        )

    def _on_reading(self, reading):
        pass


SENSOR_CASES = register_cases([
    CaseSpec(
        key="tapandturn",
        app_factory=TapAndTurn,
        category="tool",
        resource=ResourceType.SENSOR,
        behavior=BehaviorType.LUB,
        description="Orientation sensor polled with the screen off",
        paper_power=dict(vanilla=11.72, leaseos=1.87, doze=3.95,
                         defdroid=4.41),
    ),
    CaseSpec(
        key="riot",
        app_factory=Riot,
        category="messaging",
        resource=ResourceType.SENSOR,
        behavior=BehaviorType.LUB,
        description="Accelerometer registered with no consumer",
        paper_power=dict(vanilla=19.17, leaseos=1.43, doze=6.64,
                         defdroid=3.93),
    ),
])
