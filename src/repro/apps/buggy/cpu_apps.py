"""CPU (wakelock) energy-bug cases: Table 5 rows 1-6.

- Facebook: background service keeps the CPU awake with keepalive chatter
  while doing almost no work (LHB).
- Torch: wakelock acquired and simply never released (LHB).
- Kontalk: wakelock acquired in onCreate, released only in onDestroy;
  held long after authentication finished (§2, Case II; LHB).
- K-9 Mail: exception-retry loop without backoff (§2, Case I). Two
  triggers: a failing mail server (Fig. 2 pattern) and a disconnected
  network, where the app spins at full CPU making no progress (Fig. 4
  pattern; LUB -- utilization can exceed 100%, utility ~0).
- ServalMesh: retries mesh connectivity forever when not attached to an
  access point (LUB).
- TextSecure: websocket reconnect loop against a broken endpoint (LUB).
"""

from repro.apps.spec import CaseSpec
from repro.apps.buggy.registry import register_cases
from repro.core.behavior import BehaviorType
from repro.droid.app import App
from repro.droid.exceptions import NetworkException
from repro.droid.resources import ResourceType
from repro.env.network import ServerMode


class Facebook(App):
    app_name = "Facebook"
    category = "social"

    KEEPALIVE_INTERVAL_S = 12.0
    PREFETCH_EVERY = 5  # keepalives between feed prefetches

    def run(self):
        lock = self.ctx.power.new_wakelock(self, "fb-background")
        lock.acquire()  # the buggy release path never runs
        rounds = 0
        while True:
            try:
                yield from self.http("facebook-push", payload_s=1.1)
                rounds += 1
                if rounds % self.PREFETCH_EVERY == 0:
                    # Periodic feed/media prefetch nobody asked for.
                    yield from self.http("facebook-cdn", payload_s=5.0)
            except NetworkException as exc:
                self.note_exception(exc)
            yield from self.compute(0.3)
            yield self.sleep(self.KEEPALIVE_INTERVAL_S)


class Torch(App):
    app_name = "Torch"
    category = "tool"

    def run(self):
        # "FlashDevice: get the wakelock only if it isn't held already" --
        # the release path was broken, so the lock is held forever while
        # the app does nothing at all.
        self.lock = self.ctx.power.new_wakelock(self, "torch-flash")
        self.lock.acquire()
        while True:
            yield self.sleep(300.0)


class Kontalk(App):
    app_name = "Kontalk"
    category = "messaging"

    def run(self):
        # Case II: acquire when the service is created, release only when
        # the service is destroyed (never, in practice).
        lock = self.ctx.power.new_wakelock(self, "kontalk-service")
        lock.acquire()
        try:
            yield from self.http("kontalk-auth", payload_s=0.5)
            yield from self.compute(0.4)  # XMPP session setup
        except NetworkException as exc:
            self.note_exception(exc)
        # Authenticated; the fix would release here. The bug keeps the
        # CPU forced on while the connection just idles.
        while True:
            yield self.sleep(120.0)


class K9Mail(App):
    app_name = "K-9 Mail"
    category = "mail"

    SYNC_PERIOD_S = 30.0

    def __init__(self, scenario="disconnected"):
        super().__init__()
        if scenario not in ("disconnected", "bad_server"):
            raise ValueError("unknown K-9 scenario {!r}".format(scenario))
        self.scenario = scenario
        self.synced = 0  # successful push rounds (mail delivered)
        self._syncing = False

    def on_start(self):
        self.lock = self.ctx.power.new_wakelock(self, "k9-push")
        if self.scenario == "bad_server":
            self.ctx.alarms.set_repeating(
                self.uid, self.SYNC_PERIOD_S, self._sync_alarm
            )

    def _sync_alarm(self):
        if not self._syncing:
            self._syncing = True
            self.spawn(self._sync_once(), name="k9.sync")

    def _sync_once(self):
        # Fig. 2 trigger: the server answers with errors. Each alarm-driven
        # sync acquires the wakelock, retries a few times, and -- the bug --
        # keeps holding the lock through a long exception-handling path
        # before a very late release. Holds are long, CPU is nearly idle.
        self.lock.acquire()
        had_error = False
        try:
            for __ in range(3):
                try:
                    yield from self.compute(0.08)
                    yield from self.http("mail-server", payload_s=0.2)
                    self.synced += 1
                    break
                except NetworkException as exc:
                    had_error = True
                    self.note_exception(exc)
                    # waits on connection state, lock still held
                    yield self.sleep(4.0 + 8.0 * self.rng.random())
            if had_error:
                # The buggy exception-handling path lingers with the
                # lock held long after the last retry.
                yield self.sleep(5.0 + 10.0 * self.rng.random())
            else:
                yield self.sleep(0.5 + self.rng.random())
        finally:
            self.lock.release()
            self._syncing = False

    def run(self):
        if self.scenario != "disconnected":
            return
        # Case I / Fig. 8 / Fig. 4 trigger: EasPusher's start() acquires
        # a wakelock, loops over folders + push request, and releases
        # only at the *end* of start(). On exceptions it retries
        # instantly with no backoff, spinning multiple cores while
        # disconnected -- the release is never reached until the
        # environment recovers.
        while True:
            self.lock.acquire()
            while True:
                try:
                    # Serializer work per folder, then the push request.
                    yield from self.compute(0.25, cores=3.0)
                    yield from self.http("mail-server", payload_s=0.2)
                    yield from self.compute(0.1)
                    self.synced += 1
                    break  # success: fall through to the release
                except NetworkException:
                    continue  # the no-backoff bug
            self.lock.release()
            yield self.sleep(30.0)


class ServalMesh(App):
    app_name = "ServalMesh"
    category = "tool"

    RETRY_INTERVAL_S = 5.0

    def run(self):
        # Issue: "save power when not connected to an access point" --
        # the mesh service keeps routing, scanning and re-connecting
        # regardless.
        lock = self.ctx.power.new_wakelock(self, "serval-mesh")
        lock.acquire()
        while True:
            yield from self.compute(0.9)  # peer table + route recompute
            try:
                yield from self.http("serval-peer", payload_s=0.2)
            except NetworkException as exc:
                self.note_exception(exc)
            yield self.sleep(self.RETRY_INTERVAL_S)


class TextSecure(App):
    app_name = "TextSecure"
    category = "messaging"

    RETRY_INTERVAL_S = 3.0

    def run(self):
        lock = self.ctx.power.new_wakelock(self, "textsecure-websocket")
        lock.acquire()
        while True:
            try:
                yield from self.compute(0.2)  # frame the request
                yield from self.http("textsecure-ws")
                yield from self.compute(0.1)
            except NetworkException as exc:
                self.note_exception(exc)
                yield from self.compute(0.45)  # tear down / rebuild socket
            yield self.sleep(self.RETRY_INTERVAL_S)


CPU_CASES = register_cases([
    CaseSpec(
        key="facebook",
        app_factory=Facebook,
        category="social",
        resource=ResourceType.WAKELOCK,
        behavior=BehaviorType.LHB,
        description="Background service pins the CPU with keepalives",
        phone_kwargs=dict(connected=True),
        servers={"facebook-push": ServerMode.OK},
        paper_power=dict(vanilla=100.62, leaseos=1.93, doze=18.92,
                         defdroid=12.68),
    ),
    CaseSpec(
        key="torch",
        app_factory=Torch,
        category="tool",
        resource=ResourceType.WAKELOCK,
        behavior=BehaviorType.LHB,
        description="Wakelock never released, app fully idle",
        paper_power=dict(vanilla=81.54, leaseos=1.30, doze=19.26,
                         defdroid=14.39),
    ),
    CaseSpec(
        key="kontalk",
        app_factory=Kontalk,
        category="messaging",
        resource=ResourceType.WAKELOCK,
        behavior=BehaviorType.LHB,
        description="Acquire in onCreate, release only in onDestroy",
        servers={"kontalk-auth": ServerMode.OK},
        paper_power=dict(vanilla=29.41, leaseos=0.39, doze=16.84,
                         defdroid=15.99),
    ),
    CaseSpec(
        key="k9",
        app_factory=lambda: K9Mail(scenario="disconnected"),
        category="mail",
        resource=ResourceType.WAKELOCK,
        behavior=BehaviorType.LUB,
        description="No-backoff retry loop spinning while disconnected",
        phone_kwargs=dict(connected=False),
        paper_power=dict(vanilla=890.35, leaseos=81.62, doze=195.2,
                         defdroid=136.14),
    ),
    CaseSpec(
        key="servalmesh",
        app_factory=ServalMesh,
        category="tool",
        resource=ResourceType.WAKELOCK,
        behavior=BehaviorType.LUB,
        description="Endless mesh reconnect scanning",
        servers={"serval-peer": ServerMode.ERROR},
        paper_power=dict(vanilla=134.27, leaseos=1.37, doze=30.54,
                         defdroid=14.88),
    ),
    CaseSpec(
        key="textsecure",
        app_factory=TextSecure,
        category="messaging",
        resource=ResourceType.WAKELOCK,
        behavior=BehaviorType.LUB,
        description="Websocket reconnect loop against broken endpoint",
        servers={"textsecure-ws": ServerMode.ERROR},
        paper_power=dict(vanilla=81.62, leaseos=1.198, doze=18.78,
                         defdroid=16.78),
    ),
])
