"""GPS energy-bug cases: Table 5 rows 10-18.

Frequent-Ask cases (weak-signal environments):

- BetterWeather (§2, Case III): ``requestLocation`` keeps searching for a
  GPS lock non-stop inside a building; the fix never arrives (Fig. 1).
- WHERE: re-issues a fresh location request every 30 s after its own
  timeout, again under weak signal.

Long-Holding cases (registration outlives the consumer):

- MozStumbler: "interval based peroidic scanning" issue -- the GPS stays
  registered between scan windows.
- OSMTracker / GPSLogger / BostonBusMap: tracking stopped (or the
  location UI is gone) but the listener registration remains.

Low-Utility cases (locked and delivering, but the data is worthless --
the user is stationary and nothing visible comes out of it):

- AIMSICD, OpenScienceMap, OpenGPSTracker (which also burns CPU
  processing every fix of an unmoving position).
"""

from repro.apps.spec import CaseSpec
from repro.apps.buggy.registry import register_cases
from repro.core.behavior import BehaviorType
from repro.droid.app import App
from repro.droid.resources import ResourceType


class BetterWeather(App):
    app_name = "BetterWeather"
    category = "widget"

    def on_start(self):
        # The widget wants one location to fetch weather for; with no GPS
        # lock achievable it just keeps the receiver searching.
        self.fixes = 0
        self.registration = self.ctx.location.request_location_updates(
            self, self._on_location, interval=10.0
        )

    def _on_location(self, location):
        self.fixes += 1
        self.post_ui_update()  # weather refresh (never happens indoors)


class Where(App):
    app_name = "WHERE"
    category = "travel"

    REREQUEST_INTERVAL_S = 30.0

    def on_start(self):
        self.registration = None
        self._request()
        self.ctx.alarms.set_repeating(
            self.uid, self.REREQUEST_INTERVAL_S, self._request
        )

    def _request(self):
        # Times out waiting for a fix and immediately asks again with a
        # brand-new registration: the Frequent-Ask pattern.
        if self.registration is not None:
            self.registration.remove()
        self.registration = self.ctx.location.request_location_updates(
            self, self._on_location, interval=5.0
        )

    def _on_location(self, location):
        self.post_ui_update()


class MozStumbler(App):
    app_name = "MozStumbler"
    category = "service"

    SCAN_PERIOD_S = 120.0
    SCAN_WINDOW_S = 50.0

    def on_start(self):
        # Scanning is supposed to be interval-based, but the registration
        # never pauses between windows; only the consumer does.
        self.scanning = False
        self.registration = self.ctx.location.request_location_updates(
            self, self._on_location, interval=5.0
        )
        self.registration.set_consumer_active(False)
        self.ctx.alarms.set_repeating(
            self.uid, self.SCAN_PERIOD_S, self._begin_scan
        )

    def _begin_scan(self):
        self.scanning = True
        self.registration.set_consumer_active(True)
        self.ctx.alarms.set(self.uid, self.SCAN_WINDOW_S, self._end_scan)

    def _end_scan(self):
        self.scanning = False
        self.registration.set_consumer_active(False)

    def _on_location(self, location):
        if self.scanning:
            self.note_data_write()  # stumbling report


class _AbandonedTrackerApp(App):
    """Shared shape: track briefly, then the consumer goes away but the
    GPS registration is leaked."""

    category = "travel"
    TRACKING_PHASE_S = 30.0
    interval_s = 5.0

    def on_start(self):
        self.tracking = True
        self.registration = self.ctx.location.request_location_updates(
            self, self._on_location, interval=self.interval_s
        )
        self.ctx.alarms.set(self.uid, self.TRACKING_PHASE_S,
                            self._stop_tracking)

    def _stop_tracking(self):
        # The user ends the activity; the buggy path forgets
        # removeUpdates, leaving the listener registered forever.
        self.tracking = False
        self.registration.set_consumer_active(False)

    def _on_location(self, location):
        if self.tracking:
            self.note_data_write()
            self.post_ui_update()


class OSMTracker(_AbandonedTrackerApp):
    app_name = "OSMTracker"
    category = "navigation"


class GPSLogger(_AbandonedTrackerApp):
    app_name = "GPSLogger"
    category = "travel"


class BostonBusMap(_AbandonedTrackerApp):
    app_name = "BostonBusMap"
    category = "travel"
    TRACKING_PHASE_S = 20.0


class Aimsicd(App):
    app_name = "AIMSICD"
    category = "service"

    def on_start(self):
        # IMSI-catcher detector: polls location at high rate around the
        # clock; the phone sits on a desk, so every fix is the same spot.
        self.registration = self.ctx.location.request_location_updates(
            self, self._on_location, interval=2.0
        )

    def _on_location(self, location):
        pass  # compared against cell database; nothing visible happens


class OpenScienceMap(App):
    app_name = "OpenScienceMap"
    category = "navigation"

    def on_start(self):
        # "GPS stays active" after leaving the map view.
        self.registration = self.ctx.location.request_location_updates(
            self, self._on_location, interval=3.0
        )

    def _on_location(self, location):
        pass  # the map view that would consume this is gone


class OpenGPSTracker(App):
    app_name = "OpenGPSTracker"
    category = "travel"

    def on_start(self):
        # Tracks at 1 Hz and post-processes every fix while the device
        # never moves; also pins the CPU with a recording wakelock.
        self.lock = self.ctx.power.new_wakelock(self, "ogt-recording")
        self.lock.acquire()
        self.registration = self.ctx.location.request_location_updates(
            self, self._on_location, interval=1.0
        )

    def _on_location(self, location):
        self.spawn(self.compute(0.62), name="ogt.process-fix")


def _weak_signal(quality=0.1):
    return dict(gps_quality=quality, movement_mps=0.0)


def _stationary():
    return dict(gps_quality=0.95, movement_mps=0.0)


GPS_CASES = register_cases([
    CaseSpec(
        key="betterweather",
        app_factory=BetterWeather,
        category="widget",
        resource=ResourceType.GPS,
        behavior=BehaviorType.FAB,
        description="Non-stop GPS search under weak indoor signal",
        phone_kwargs=_weak_signal(0.10),
        paper_power=dict(vanilla=115.36, leaseos=2.59, doze=20.38,
                         defdroid=39.97),
    ),
    CaseSpec(
        key="where",
        app_factory=Where,
        category="travel",
        resource=ResourceType.GPS,
        behavior=BehaviorType.FAB,
        description="Re-requests a fresh GPS registration every 30 s",
        phone_kwargs=_weak_signal(0.12),
        paper_power=dict(vanilla=126.28, leaseos=23.33, doze=20.42,
                         defdroid=69.62),
    ),
    CaseSpec(
        key="mozstumbler",
        app_factory=MozStumbler,
        category="service",
        resource=ResourceType.GPS,
        behavior=BehaviorType.LHB,
        description="GPS registered between periodic scan windows",
        phone_kwargs=dict(gps_quality=0.95, movement_mps=0.0),
        paper_power=dict(vanilla=122.43, leaseos=67.53, doze=36.48,
                         defdroid=62.7),
    ),
    CaseSpec(
        key="osmtracker",
        app_factory=OSMTracker,
        category="navigation",
        resource=ResourceType.GPS,
        behavior=BehaviorType.LHB,
        description="Listener leaked after tracking stops",
        phone_kwargs=_stationary(),
        paper_power=dict(vanilla=121.51, leaseos=8.39, doze=20.52,
                         defdroid=73.34),
    ),
    CaseSpec(
        key="gpslogger",
        app_factory=GPSLogger,
        category="travel",
        resource=ResourceType.GPS,
        behavior=BehaviorType.LHB,
        description="Listener leaked after logging stops",
        phone_kwargs=_stationary(),
        paper_power=dict(vanilla=118.25, leaseos=4.33, doze=21.98,
                         defdroid=70.7),
    ),
    CaseSpec(
        key="bostonbusmap",
        app_factory=BostonBusMap,
        category="travel",
        resource=ResourceType.GPS,
        behavior=BehaviorType.LHB,
        description="GPS kept on after the location view is closed",
        phone_kwargs=_stationary(),
        paper_power=dict(vanilla=115.5, leaseos=3.97, doze=19.5,
                         defdroid=71.09),
    ),
    CaseSpec(
        key="aimsicd",
        app_factory=Aimsicd,
        category="service",
        resource=ResourceType.GPS,
        behavior=BehaviorType.LUB,
        description="Round-the-clock fixes of an unmoving phone",
        phone_kwargs=_stationary(),
        paper_power=dict(vanilla=119.43, leaseos=4.50, doze=23.91,
                         defdroid=73.31),
    ),
    CaseSpec(
        key="opensciencemap",
        app_factory=OpenScienceMap,
        category="navigation",
        resource=ResourceType.GPS,
        behavior=BehaviorType.LUB,
        description="GPS stays active after leaving the map",
        phone_kwargs=_stationary(),
        paper_power=dict(vanilla=123.97, leaseos=3.40, doze=19.91,
                         defdroid=91.25),
    ),
    CaseSpec(
        key="opengpstracker",
        app_factory=OpenGPSTracker,
        category="travel",
        resource=ResourceType.GPS,
        behavior=BehaviorType.LUB,
        description="1 Hz fixes + CPU post-processing of a fixed position",
        phone_kwargs=_stationary(),
        paper_power=dict(vanilla=360.25, leaseos=1.32, doze=19.91,
                         defdroid=237.41),
    ),
])
