"""Extension case: the paper's introduction example, on the audio class.

§1 opens with the Facebook iOS release that "would leak the audio
sessions in some scenarios, leaving the app doing nothing but staying
awake in the background draining the battery", plus "long CPU spins
without making any progress" in the network handling code. This module
reproduces both halves on the simulated audio service: a session opened
for a video in the feed is never closed when the user scrolls on, and a
keepalive path occasionally spins.

Not a Table 5 row (the paper's evaluation covers Android resources);
this exercises the audio lease proxy end to end.
"""

from repro.apps.spec import CaseSpec
from repro.apps.buggy.registry import register_cases
from repro.core.behavior import BehaviorType
from repro.droid.app import App
from repro.droid.exceptions import NetworkException
from repro.droid.resources import ResourceType


class FacebookAudioLeak(App):
    """Leaks an audio session and keeps the CPU awake behind it."""

    app_name = "Facebook (audio leak)"
    category = "social"

    VIDEO_S = 20.0

    def run(self):
        # The user watches one feed video...
        self.session = self.ctx.audio.open_session(self, "feed-video")
        self.session.start_playback()
        self.lock = self.ctx.power.new_wakelock(self, "fb-av")
        self.lock.acquire()
        yield self.sleep(self.VIDEO_S)
        # ...then scrolls on. The buggy path stops the frames but leaks
        # the session and the wakelock; the network keepalive spins.
        self.session.stop_playback()
        while True:
            try:
                yield from self.compute(0.3)
                yield from self.http("facebook-av", payload_s=0.1)
            except NetworkException as exc:
                self.note_exception(exc)
            yield self.sleep(2.0)


AUDIO_EXTRA_CASES = register_cases([
    CaseSpec(
        key="facebook-audio",
        app_factory=FacebookAudioLeak,
        category="social",
        resource=ResourceType.AUDIO,
        behavior=BehaviorType.LHB,
        description="Audio session leaked after playback (the 1 iOS "
                    "example; extension case, not in Table 5)",
        servers={"facebook-av": "error"},
        paper_power={},
    ),
], extension=True)
