"""Screen and Wi-Fi lock energy-bug cases: Table 5 rows 7-9.

- ConnectBot (screen): keeps a screen-bright wakelock for the terminal
  session even when the user has long stopped interacting (LHB).
- Standup Timer: releases its screen wakelock in onPause, but a code path
  leaves the timer screen locked with no one watching (LHB).
- ConnectBot (Wi-Fi): "only lock Wi-Fi if our active network is Wi-Fi" --
  the buggy version holds a Wi-Fi high-perf lock while on cellular,
  keeping the Wi-Fi radio awake with zero transfers (LHB).
"""

from repro.apps.spec import CaseSpec
from repro.apps.buggy.registry import register_cases
from repro.core.behavior import BehaviorType
from repro.droid.app import App
from repro.droid.power_manager import WakeLockLevel
from repro.droid.resources import ResourceType


class ConnectBotScreen(App):
    app_name = "ConnectBot"
    category = "tool"

    def run(self):
        # An SSH session screen lock; the user walks away but the session
        # (and its bright-screen lock) stays.
        lock = self.ctx.power.new_wakelock(
            self, "connectbot-session", level=WakeLockLevel.SCREEN_BRIGHT
        )
        lock.acquire()
        while True:
            yield self.sleep(300.0)


class StandupTimer(App):
    app_name = "Standup Timer"
    category = "productivity"

    def run(self):
        # The fix moved release into onPause "because onPause is
        # guaranteed to be called"; the buggy version keeps the meeting
        # timer's screen on forever after the meeting ends.
        lock = self.ctx.power.new_wakelock(
            self, "standup-timer", level=WakeLockLevel.SCREEN_BRIGHT
        )
        lock.acquire()
        while True:
            yield from self.compute(0.05)  # tick the timer display
            yield self.sleep(10.0)


class ConnectBotWifi(App):
    app_name = "ConnectBot (Wi-Fi)"
    category = "tool"

    def run(self):
        # Active network is cellular, but the Wi-Fi lock is taken anyway
        # and never released.
        lock = self.ctx.wifi.new_lock(self, "connectbot-wifi")
        lock.acquire()
        while True:
            yield self.sleep(300.0)


SCREEN_CASES = register_cases([
    CaseSpec(
        key="connectbot-screen",
        app_factory=ConnectBotScreen,
        category="tool",
        resource=ResourceType.SCREEN,
        behavior=BehaviorType.LHB,
        description="Screen-bright wakelock held with no user present",
        paper_power=dict(vanilla=576.52, leaseos=23.23, doze=573.23,
                         defdroid=115.56),
    ),
    CaseSpec(
        key="standup-timer",
        app_factory=StandupTimer,
        category="productivity",
        resource=ResourceType.SCREEN,
        behavior=BehaviorType.LHB,
        description="Screen wakelock not released after the meeting",
        paper_power=dict(vanilla=569.10, leaseos=13.26, doze=544.46,
                         defdroid=61.82),
    ),
    CaseSpec(
        key="connectbot-wifi",
        app_factory=ConnectBotWifi,
        category="tool",
        resource=ResourceType.WIFI,
        behavior=BehaviorType.LHB,
        description="Wi-Fi lock held while the active network is cellular",
        phone_kwargs=dict(connected=True, network_kind="cellular"),
        paper_power=dict(vanilla=17.08, leaseos=0.78, doze=3.21,
                         defdroid=2.57),
    ),
])
