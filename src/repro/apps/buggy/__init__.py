"""The 20 real-world energy-bug cases of Table 5, re-implemented.

Each app module encodes the *documented defect* (from the paper's §2 case
studies and the issue links in its bibliography) as app logic on the
:mod:`repro.droid` framework; each :class:`~repro.apps.spec.CaseSpec`
in :data:`BUGGY_CASES` carries the environment that triggers the bug and
the paper's measured powers for comparison.

Registration is centralised in :mod:`repro.apps.buggy.registry`: the
per-resource modules below register their cases at import time (Table 5
tier in the paper's order, audio/bluetooth as extension tier), and the
scenario generator (:mod:`repro.scenarios`) registers generated cases
into the same registry at catalog-instantiation time. Every key lookup
goes through :func:`resolve_case`.
"""

from repro.apps.buggy.registry import (  # noqa: F401 (re-exports)
    BUGGY_CASES,
    CASES_BY_KEY,
    EXTENSION_CASES_BY_KEY,
    SCENARIO_CASES_BY_KEY,
    SCENARIO_PREFIX,
    is_scenario_key,
    register_case,
    register_cases,
    register_scenario_cases,
    resolve_case,
    scenario_families,
)

# Table 5 tier: import order *is* registration order, so this block
# pins BUGGY_CASES to the paper's row order (cpu, screen, gps, sensor).
from repro.apps.buggy import cpu_apps as _cpu_apps  # noqa: E402,F401
from repro.apps.buggy import screen_apps as _screen_apps  # noqa: E402,F401
from repro.apps.buggy import gps_apps as _gps_apps  # noqa: E402,F401
from repro.apps.buggy import sensor_apps as _sensor_apps  # noqa: E402,F401

# Extension tier: resolvable by key, never in CASES_BY_KEY (the fleet
# sampling pool is sorted(CASES_BY_KEY) and must stay byte-stable).
from repro.apps.buggy import audio_apps as _audio_apps  # noqa: E402,F401
from repro.apps.buggy import bluetooth_apps as _bt_apps  # noqa: E402,F401

__all__ = [
    "BUGGY_CASES",
    "CASES_BY_KEY",
    "EXTENSION_CASES_BY_KEY",
    "SCENARIO_CASES_BY_KEY",
    "SCENARIO_PREFIX",
    "is_scenario_key",
    "register_case",
    "register_cases",
    "register_scenario_cases",
    "resolve_case",
    "scenario_families",
]
