"""The 20 real-world energy-bug cases of Table 5, re-implemented.

Each app module encodes the *documented defect* (from the paper's §2 case
studies and the issue links in its bibliography) as app logic on the
:mod:`repro.droid` framework; each :class:`~repro.apps.spec.CaseSpec`
in :data:`BUGGY_CASES` carries the environment that triggers the bug and
the paper's measured powers for comparison.
"""

from repro.apps.buggy.cpu_apps import CPU_CASES
from repro.apps.buggy.gps_apps import GPS_CASES
from repro.apps.buggy.screen_apps import SCREEN_CASES
from repro.apps.buggy.sensor_apps import SENSOR_CASES

#: All Table 5 rows, in the paper's order.
BUGGY_CASES = CPU_CASES + SCREEN_CASES + GPS_CASES + SENSOR_CASES

CASES_BY_KEY = {case.key: case for case in BUGGY_CASES}

__all__ = ["BUGGY_CASES", "CASES_BY_KEY"]
