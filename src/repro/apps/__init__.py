"""Workload apps: the paper's evaluation subjects.

- :mod:`repro.apps.buggy` -- behavioural re-implementations of the 20
  real-world energy-bug cases of Table 5 (registry:
  :data:`repro.apps.buggy.BUGGY_CASES`).
- :mod:`repro.apps.normal` -- well-behaved apps: the §7.4 usability trio
  (RunKeeper, Spotify, Haven), the Trepn profiler, and interactive
  foreground apps for Figs. 11/13/14.
- :mod:`repro.apps.synthetic` -- the §5.1 Long-Holding test app and the
  §7.5 intermittent-misbehaviour generator.
"""

from repro.apps.spec import CaseSpec, build_phone_for

__all__ = ["CaseSpec", "build_phone_for"]
