"""The "after the developers' fix" versions of more Table 5 cases.

Each mirrors the fix the paper (or the referenced issue tracker)
describes:

- Kontalk (§2 Case II): "releasing the wakelock as soon as the app is
  authenticated."
- BetterWeather (§2 Case III): stop the GPS search after a timeout when
  no lock can be obtained.
- Standup Timer: "release the wakeLock in onPause(), because onPause is
  guaranteed to be called."

Together with :class:`~repro.apps.normal.archetypes.K9MailFixed` these
drive the generalized fix-vs-lease comparison
(:mod:`repro.experiments.fix_comparison`).
"""

from repro.droid.app import App
from repro.droid.exceptions import NetworkException
from repro.droid.power_manager import WakeLockLevel


class KontalkFixed(App):
    """Kontalk after the fix: release right after authentication."""

    app_name = "Kontalk (fixed)"
    category = "messaging"

    def run(self):
        self.lock = self.ctx.power.new_wakelock(self, "kontalk-service")
        self.lock.acquire()
        try:
            yield from self.http("kontalk-auth", payload_s=0.5)
            yield from self.compute(0.4)
        except NetworkException as exc:
            self.note_exception(exc)
        finally:
            self.lock.release()  # THE FIX: release as soon as authed
        while True:
            yield self.sleep(120.0)


class BetterWeatherFixed(App):
    """BetterWeather after the fix: give up the search on timeout."""

    app_name = "BetterWeather (fixed)"
    category = "widget"

    SEARCH_TIMEOUT_S = 60.0
    RETRY_AFTER_S = 1800.0  # try again in half an hour

    def on_start(self):
        self.fixes = 0
        self.registration = None
        self._request()

    def _request(self):
        self.registration = self.ctx.location.request_location_updates(
            self, self._on_location, interval=10.0
        )
        self._timeout_alarm = self.ctx.alarms.set(
            self.uid, self.SEARCH_TIMEOUT_S, self._give_up
        )

    def _give_up(self):
        # THE FIX: no lock within the timeout -> stop searching, retry
        # much later instead of burning the receiver all day.
        if self.registration is not None and self.fixes == 0:
            self.registration.remove()
            self.registration = None
            self.ctx.alarms.set(self.uid, self.RETRY_AFTER_S,
                                self._request)

    def _on_location(self, location):
        self.fixes += 1
        self.post_ui_update()
        if self.registration is not None:
            self.registration.remove()  # one fix is all the widget needs
            self.registration = None


class StandupTimerFixed(App):
    """Standup Timer after the fix: screen lock released in onPause."""

    app_name = "Standup Timer (fixed)"
    category = "productivity"

    MEETING_S = 900.0  # a 15-minute standup (generous)

    def on_start(self):
        self.lock = self.ctx.power.new_wakelock(
            self, "standup-timer", level=WakeLockLevel.SCREEN_BRIGHT
        )
        self.lock.acquire()
        # onPause fires when the meeting ends / the user leaves.
        self.ctx.alarms.set(self.uid, self.MEETING_S, self._on_pause)

    def _on_pause(self):
        if self.lock.held:
            self.lock.release()  # THE FIX

    def run(self):
        while True:
            if self.lock.held:
                yield from self.compute(0.01)  # tick the countdown
                self.post_ui_update()  # the seconds display changes
                yield self.sleep(0.99)
            else:
                yield self.sleep(10.0)
