"""The §2.3 heavy-but-normal apps: Pandora, Transdroid, Flym.

"In addition, several normal apps in the test phones (e.g., Pandora,
Transdroid, Flym) also incur long wakelock holding time" -- the paper's
evidence that absolute holding time is a misleading misbehaviour
classifier. All three hold wakelocks for as long as the buggy apps do,
while actually using them.
"""

from repro.droid.app import App
from repro.droid.exceptions import NetworkException


class Pandora(App):
    """Internet radio: continuous playback + periodic buffering."""

    app_name = "Pandora"
    category = "music"
    foreground_service = True

    def on_start(self):
        self.session = self.ctx.audio.open_session(self, "pandora")
        self.session.start_playback()
        self.lock = self.ctx.power.new_wakelock(self, "pandora-stream")
        self.lock.acquire()

    def run(self):
        chunk_age = 8.0
        while True:
            if chunk_age >= 8.0:
                chunk_age = 0.0
                try:
                    yield from self.http("pandora-cdn", payload_s=0.8)
                except NetworkException as exc:
                    self.note_exception(exc)
            yield from self.compute(0.1)  # decode
            yield self.sleep(0.9)
            chunk_age += 1.0


class Transdroid(App):
    """Torrent manager: long-held lock, sustained transfer + hashing."""

    app_name = "Transdroid"
    category = "tool"
    foreground_service = True

    def on_start(self):
        self.pieces = 0
        self.lock = self.ctx.power.new_wakelock(self, "transdroid-dl")
        self.lock.acquire()

    def run(self):
        while True:
            try:
                yield from self.http("torrent-peers", payload_s=1.5)
                # Hash-check and persist the piece.
                yield from self.compute(0.25)
                self.pieces += 1
                self.note_data_write()
            except NetworkException as exc:
                self.note_exception(exc)
                yield self.sleep(10.0)
            yield self.sleep(1.0)


class Flym(App):
    """RSS reader: periodic full-feed refresh under a held lock."""

    app_name = "Flym"
    category = "news"
    foreground_service = True

    REFRESH_INTERVAL_S = 15.0

    def on_start(self):
        self.refreshed = 0
        self.lock = self.ctx.power.new_wakelock(self, "flym-sync")
        self.lock.acquire()

    def run(self):
        while True:
            for __ in range(6):  # many subscribed feeds per refresh
                try:
                    yield from self.http("flym-feeds", payload_s=0.5)
                    yield from self.compute(0.4)  # parse + dedupe
                except NetworkException as exc:
                    self.note_exception(exc)
            self.refreshed += 1
            self.note_data_write(2)
            yield self.sleep(self.REFRESH_INTERVAL_S)
