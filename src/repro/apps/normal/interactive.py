"""User-driven foreground apps for the Fig. 11 / 13 / 14 experiments.

:class:`InteractiveApp` is a configurable well-behaved app: touches run a
handler (compute + optional network + UI update), and an optional
background sync acquires a wakelock, does its work, and releases it
promptly -- the intended ask-use-release discipline.

:func:`popular_apps` instantiates a fleet of these with varied parameter
mixes ("use 10 apps in turn", "use 30 apps in turn" of Fig. 13).

:class:`LatencyProbeApp` measures end-to-end interaction latency for the
three resource-backed flows of Fig. 14 (sensor / wakelock / GPS).
"""

from repro.droid.app import App
from repro.droid.exceptions import NetworkException
from repro.droid.sensors import SensorType
from repro.sim.events import Event


class InteractiveApp(App):
    """A well-behaved app parameterized by its workload mix."""

    category = "interactive"

    def __init__(self, name, touch_compute_s=0.3, touch_payload_s=0.4,
                 sync_interval_s=120.0, sync_compute_s=0.5,
                 media_streaming=False):
        super().__init__(name=name)
        self.touch_compute_s = touch_compute_s
        self.touch_payload_s = touch_payload_s
        self.sync_interval_s = sync_interval_s
        self.sync_compute_s = sync_compute_s
        self.media_streaming = media_streaming
        self._streaming = False

    def run(self):
        if self.sync_interval_s is None:
            return
        while True:
            yield self.sleep(self.sync_interval_s * (0.5 + self.rng.random()))
            yield from self._sync_once()

    def _sync_once(self):
        # The intended discipline: acquire, work, release promptly.
        lock = self.ctx.power.new_wakelock(self, "{}-sync".format(self.name))
        lock.acquire()
        try:
            yield from self.compute(self.sync_compute_s)
            try:
                yield from self.http("{}-backend".format(self.name),
                                     payload_s=0.3)
            except NetworkException as exc:
                self.note_exception(exc)
            self.post_ui_update()
        finally:
            lock.release()

    def on_touch(self):
        self.spawn(self._handle_touch(), name="{}.touch".format(self.name))
        if self.media_streaming and not self._streaming:
            self._streaming = True
            self.spawn(self._stream(60.0), name="{}.stream".format(self.name))

    def _handle_touch(self):
        # Half the fetch-style touches take a short wakelock around the
        # work, the intended acquire-work-release discipline; this is
        # what produces the short-lived lease churn of Fig. 11.
        lock = None
        if self.touch_payload_s and self.rng.random() < 0.5:
            lock = self.ctx.power.new_wakelock(
                self, "{}-touch".format(self.name)
            )
            lock.acquire()
        try:
            yield from self.compute(self.touch_compute_s)
            if self.touch_payload_s:
                try:
                    yield from self.http("{}-backend".format(self.name),
                                         payload_s=self.touch_payload_s)
                except NetworkException as exc:
                    self.note_exception(exc)
            self.post_ui_update()
            if lock is not None:
                # Finish cache writes before letting the CPU sleep.
                yield self.sleep(2.0 + 3.0 * self.rng.random())
        finally:
            if lock is not None and lock.held:
                lock.release()

    def _stream(self, duration_s):
        session = self.ctx.audio.open_session(self, "{}-media".format(self.name))
        session.start_playback()
        lock = self.ctx.power.new_wakelock(self, "{}-media".format(self.name))
        lock.acquire()
        try:
            end = self.ctx.sim.now + duration_s
            while self.ctx.sim.now < end:
                try:
                    yield from self.http("{}-cdn".format(self.name),
                                         payload_s=0.8)
                except NetworkException as exc:
                    self.note_exception(exc)
                yield from self.compute(0.8)
                yield self.sleep(4.0)
        finally:
            lock.release()
            session.stop_playback()
            session.close()
            self._streaming = False


#: Parameter mixes loosely modelled on popular app categories.
_POPULAR_MIXES = [
    ("YouTube", dict(media_streaming=True, touch_compute_s=0.4,
                     touch_payload_s=1.0, sync_interval_s=300.0)),
    ("Chrome", dict(touch_compute_s=0.5, touch_payload_s=0.8,
                    sync_interval_s=None)),
    ("Gmail", dict(touch_compute_s=0.2, touch_payload_s=0.3,
                   sync_interval_s=180.0)),
    ("Maps", dict(touch_compute_s=0.6, touch_payload_s=0.5,
                  sync_interval_s=None)),
    ("Twitter", dict(touch_compute_s=0.25, touch_payload_s=0.4,
                     sync_interval_s=240.0)),
    ("Instagram", dict(touch_compute_s=0.3, touch_payload_s=0.9,
                       sync_interval_s=300.0)),
    ("AngryBirds", dict(touch_compute_s=0.8, touch_payload_s=0.0,
                        sync_interval_s=None)),
    ("NewsReader", dict(touch_compute_s=0.2, touch_payload_s=0.5,
                        sync_interval_s=360.0)),
    ("Pandora", dict(media_streaming=True, touch_compute_s=0.2,
                     touch_payload_s=0.4, sync_interval_s=None)),
    ("WeChat", dict(touch_compute_s=0.2, touch_payload_s=0.3,
                    sync_interval_s=150.0)),
]


def popular_apps(count):
    """Build ``count`` distinct interactive apps (cycling the mixes)."""
    apps = []
    for index in range(count):
        base_name, kwargs = _POPULAR_MIXES[index % len(_POPULAR_MIXES)]
        name = base_name if index < len(_POPULAR_MIXES) else \
            "{}-{}".format(base_name, index // len(_POPULAR_MIXES) + 1)
        apps.append(InteractiveApp(name, **kwargs))
    return apps


class LatencyProbeApp(App):
    """Measures touch -> UI-update latency for resource-backed flows.

    ``kind`` selects the Fig. 14 flow: "sensor" (register, first reading,
    UI), "wakelock" (acquire, work, network, release, UI), or "gps"
    (request updates, first fix, UI).
    """

    category = "probe"

    def __init__(self, kind):
        if kind not in ("sensor", "wakelock", "gps"):
            raise ValueError("unknown probe kind {!r}".format(kind))
        super().__init__(name="{}-probe".format(kind))
        self.kind = kind
        self.flow_latencies = []  # (start, end) sim times

    def on_touch(self):
        self.spawn(self._flow(), name="{}.flow".format(self.name))

    def _flow(self):
        start = self.ctx.sim.now
        calls_before = self.ctx.ipc.call_count(self.uid)
        if self.kind == "sensor":
            yield from self._sensor_flow()
        elif self.kind == "wakelock":
            yield from self._wakelock_flow()
        else:
            yield from self._gps_flow()
        self.post_ui_update()
        ipc_extra = sum(
            c.latency_s for c in self.ctx.ipc.calls_for(self.uid)
        [calls_before:])
        self.flow_latencies.append(
            (start, self.ctx.sim.now - start + ipc_extra)
        )

    def _sensor_flow(self):
        got = Event(self.ctx.sim, "sensor-reading")
        registration = self.ctx.sensors.register_listener(
            self, SensorType.ACCELEROMETER,
            lambda reading: None if got.fired else got.fire(reading),
            rate_hz=1.0,
        )
        yield got
        yield from self.compute(0.05)
        registration.unregister()

    def _wakelock_flow(self):
        lock = self.ctx.power.new_wakelock(self, "probe-flow")
        lock.acquire()
        try:
            yield from self.compute(0.8)
            try:
                yield from self.http("probe-backend", payload_s=0.5)
            except NetworkException as exc:
                self.note_exception(exc)
        finally:
            lock.release()

    def _gps_flow(self):
        got = Event(self.ctx.sim, "gps-fix")
        registration = self.ctx.location.request_location_updates(
            self, lambda loc: None if got.fired else got.fire(loc),
            interval=1.0,
        )
        yield got
        yield from self.compute(0.1)
        registration.remove()

    def mean_latency_ms(self):
        if not self.flow_latencies:
            return 0.0
        return 1000.0 * sum(d for _, d in self.flow_latencies) \
            / len(self.flow_latencies)
