"""Normal background apps with heavy-but-legitimate resource use (§7.4).

Each app runs a *disruption watchdog* on the AlarmManager (alarm
callbacks fire even when the device sleeps, so a frozen app still gets
caught): if the app's core function stalls -- a tracking gap, a playback
stall, a monitoring blackout -- it records a disruption. Under LeaseOS
these apps should run disruption-free because their resources produce
real utility; under pure time-based throttling they all break (§7.4).
"""

from repro.droid.app import App
from repro.droid.exceptions import NetworkException
from repro.droid.sensors import SensorType


class RunKeeper(App):
    """Fitness tracking: GPS + accelerometer + wakelock, user running."""

    app_name = "RunKeeper"
    category = "fitness"
    foreground_service = True

    GPS_INTERVAL_S = 3.0
    WATCHDOG_S = 30.0

    def on_start(self):
        self.last_fix = self.ctx.sim.now
        self._in_gap = False
        self.lock = self.ctx.power.new_wakelock(self, "runkeeper-track")
        self.lock.acquire()
        self.registration = self.ctx.location.request_location_updates(
            self, self._on_location, interval=self.GPS_INTERVAL_S
        )
        self.sensor = self.ctx.sensors.register_listener(
            self, SensorType.ACCELEROMETER, self._on_step, rate_hz=5.0
        )
        self.ctx.alarms.set_repeating(self.uid, self.WATCHDOG_S,
                                      self._watchdog)

    def run(self):
        # Sensor fusion / pace estimation runs continuously while
        # tracking, keeping the wakelock visibly utilized.
        while True:
            yield from self.compute(0.1)
            yield self.sleep(0.9)

    def _on_location(self, location):
        self.last_fix = self.ctx.sim.now
        self._in_gap = False
        self.note_data_write()  # track point persisted
        self.post_ui_update()  # pace/distance display

    def _on_step(self, reading):
        pass  # cadence estimation folded into the fusion loop

    def _watchdog(self):
        gap = self.ctx.sim.now - self.last_fix
        if gap > self.WATCHDOG_S and not self._in_gap:
            self._in_gap = True
            self.record_disruption(
                "fitness tracking stopped ({:.0f}s without a fix)".format(gap)
            )


class Spotify(App):
    """Music streaming: audio session + wakelock + periodic chunks."""

    app_name = "Spotify"
    category = "music"
    foreground_service = True

    CHUNK_INTERVAL_S = 10.0
    WATCHDOG_S = 20.0

    def on_start(self):
        self.last_chunk = self.ctx.sim.now
        self._stalled = False
        self.session = self.ctx.audio.open_session(self, "spotify-playback")
        self.session.start_playback()
        self.lock = self.ctx.power.new_wakelock(self, "spotify-stream")
        self.lock.acquire()
        self.ctx.alarms.set_repeating(self.uid, self.WATCHDOG_S,
                                      self._watchdog)

    def run(self):
        seconds_since_chunk = self.CHUNK_INTERVAL_S  # fetch immediately
        while True:
            if seconds_since_chunk >= self.CHUNK_INTERVAL_S:
                seconds_since_chunk = 0.0
                try:
                    yield from self.http("spotify-cdn", payload_s=1.0)
                    self.last_chunk = self.ctx.sim.now
                    self._stalled = False
                except NetworkException as exc:
                    self.note_exception(exc)
            # Decoding keeps the CPU continuously (mildly) busy.
            yield from self.compute(0.12)
            yield self.sleep(0.88)
            seconds_since_chunk += 1.0

    def _watchdog(self):
        gap = self.ctx.sim.now - self.last_chunk
        if gap > self.WATCHDOG_S and not self._stalled:
            self._stalled = True
            self.record_disruption(
                "music playback stalled ({:.0f}s without a chunk)".format(gap)
            )


class Haven(App):
    """Continuous intrusion monitoring via sensors (headless but useful)."""

    app_name = "Haven"
    category = "security"
    foreground_service = True

    WATCHDOG_S = 30.0

    def on_start(self):
        self.last_reading = self.ctx.sim.now
        self._blind = False
        self.motion = self.ctx.sensors.register_listener(
            self, SensorType.CAMERA_MOTION, self._on_motion, rate_hz=2.0
        )
        self.accel = self.ctx.sensors.register_listener(
            self, SensorType.ACCELEROMETER, self._on_motion, rate_hz=5.0
        )
        self.ctx.alarms.set_repeating(self.uid, self.WATCHDOG_S,
                                      self._watchdog)

    def _on_motion(self, reading):
        self.last_reading = self.ctx.sim.now
        self._blind = False
        if reading.value > 0.93:  # motion detected: log evidence
            self.note_data_write()

    def _watchdog(self):
        gap = self.ctx.sim.now - self.last_reading
        if gap > self.WATCHDOG_S and not self._blind:
            self._blind = True
            self.record_disruption(
                "monitoring blind ({:.0f}s without sensor data)".format(gap)
            )


class TrepnProfiler(App):
    """The profiling tool itself (§7.4 notes it breaks under throttling)."""

    app_name = "Trepn Profiler"
    category = "tool"
    foreground_service = True

    SAMPLE_INTERVAL_S = 2.0
    WATCHDOG_S = 20.0

    def on_start(self):
        self.last_sample = self.ctx.sim.now
        self._stopped = False
        self.lock = self.ctx.power.new_wakelock(self, "trepn-sampling")
        self.lock.acquire()
        self.ctx.alarms.set_repeating(self.uid, self.WATCHDOG_S,
                                      self._watchdog)

    def run(self):
        while True:
            yield from self.compute(0.15)
            self.note_data_write()
            self.last_sample = self.ctx.sim.now
            self._stopped = False
            yield self.sleep(self.SAMPLE_INTERVAL_S)

    def _watchdog(self):
        gap = self.ctx.sim.now - self.last_sample
        if gap > self.WATCHDOG_S and not self._stopped:
            self._stopped = True
            self.record_disruption(
                "profiler stopped collecting ({:.0f}s gap)".format(gap)
            )


class NextcloudSync(App):
    """A modern well-behaved sync app: JobScheduler, not alarms.

    Schedules a network-constrained periodic job; the scheduler holds the
    wakelock around each run, so the app itself never touches one --
    the idiom Android pushes app developers toward.
    """

    app_name = "Nextcloud"
    category = "productivity"

    SYNC_INTERVAL_S = 120.0

    def on_start(self):
        self.synced = 0
        self.job = self.ctx.jobs.schedule(
            self, self.SYNC_INTERVAL_S, self._sync_job,
            requires_network=True,
        )

    def _sync_job(self):
        yield from self.compute(0.3)
        try:
            yield from self.http("nextcloud-server", payload_s=0.6)
            self.synced += 1
            self.note_data_write()
        except NetworkException as exc:
            self.note_exception(exc)


#: The §7.4 usability subjects (factories + the environment they need).
USABILITY_APPS = [
    (RunKeeper, dict(gps_quality=0.95, movement_mps=2.5)),
    (Spotify, dict(connected=True)),
    (Haven, dict()),
]
