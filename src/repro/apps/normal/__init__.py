"""Well-behaved apps: the §7.4 usability subjects and foreground apps.

- :mod:`repro.apps.normal.background` -- RunKeeper, Spotify, Haven (the
  §7.4 trio) and the Trepn profiler app, all with built-in disruption
  watchdogs so usability impact is measurable.
- :mod:`repro.apps.normal.interactive` -- user-driven foreground apps for
  the lease-activity (Fig. 11), overhead (Fig. 13) and latency (Fig. 14)
  experiments.
"""

from repro.apps.normal.background import (
    Haven,
    NextcloudSync,
    RunKeeper,
    Spotify,
    TrepnProfiler,
    USABILITY_APPS,
)
from repro.apps.normal.interactive import (
    InteractiveApp,
    LatencyProbeApp,
    popular_apps,
)

__all__ = [
    "RunKeeper",
    "Spotify",
    "Haven",
    "NextcloudSync",
    "TrepnProfiler",
    "USABILITY_APPS",
    "InteractiveApp",
    "LatencyProbeApp",
    "popular_apps",
]
