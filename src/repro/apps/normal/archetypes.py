"""More well-behaved app archetypes, including "after the fix" apps.

The most interesting one is :class:`K9MailFixed`: the paper notes the
K-9 developers fixed Case I "by adding an exponential back-off and
prompt wakelock release". Running the fixed app on vanilla Android
against the *buggy* app under LeaseOS quantifies the paper's implicit
claim: the lease mechanism automatically approximates what a correct
developer fix achieves, without the developer.
"""

from repro.droid.app import App
from repro.droid.exceptions import NetworkException


class K9MailFixed(App):
    """K-9 after the developers' fix: backoff + prompt release."""

    app_name = "K-9 Mail (fixed)"
    category = "mail"

    SYNC_PERIOD_S = 30.0
    MAX_BACKOFF_S = 600.0

    def __init__(self):
        super().__init__()
        self.synced = 0
        self.backoff_s = 0.0  # remaining skip time
        self.last_backoff_s = 0.0  # the exponential ladder position
        self._syncing = False

    def on_start(self):
        self.lock = self.ctx.power.new_wakelock(self, "k9-push-fixed")
        self.ctx.alarms.set_repeating(self.uid, self.SYNC_PERIOD_S,
                                      self._sync_alarm)

    def _sync_alarm(self):
        if self._syncing:
            return
        if self.backoff_s > 0:
            # Exponential backoff: skip sync rounds while backing off.
            self.backoff_s = max(0.0, self.backoff_s - self.SYNC_PERIOD_S)
            return
        self._syncing = True
        self.spawn(self._sync_once(), name="k9fixed.sync")

    def _sync_once(self):
        self.lock.acquire()
        try:
            yield from self.compute(0.08)
            yield from self.http("mail-server", payload_s=0.2)
            self.synced += 1
            self.backoff_s = 0.0
            self.last_backoff_s = 0.0
        except NetworkException as exc:
            self.note_exception(exc)
            # The fix: back off exponentially instead of spinning.
            self.last_backoff_s = min(
                self.MAX_BACKOFF_S,
                max(self.SYNC_PERIOD_S, self.last_backoff_s * 2.0),
            )
            self.backoff_s = self.last_backoff_s
        finally:
            # The fix: prompt release on every path.
            self.lock.release()
            self._syncing = False


class NavigationApp(App):
    """Turn-by-turn navigation: the canonical legitimate heavy user.

    GPS at 1 Hz, bright screen, route computation per fix, constant UI
    updates -- Excessive-Use by the classifier, and deliberately left
    alone by LeaseOS (EUB is a non-goal, §4).
    """

    app_name = "TurnByTurn"
    category = "navigation"
    foreground_service = True

    def on_start(self):
        from repro.droid.power_manager import WakeLockLevel

        self.screen_lock = self.ctx.power.new_wakelock(
            self, "nav-screen", level=WakeLockLevel.SCREEN_BRIGHT
        )
        self.screen_lock.acquire()
        self.registration = self.ctx.location.request_location_updates(
            self, self._on_fix, interval=1.0
        )
        self.fixes = 0

    def _on_fix(self, location):
        self.fixes += 1
        self.post_ui_update()
        self.spawn(self.compute(0.15), name="nav.route")


class PodcastPlayer(App):
    """Job-scheduled episode downloads + touch-driven playback."""

    app_name = "PodcatcherPro"
    category = "media"
    foreground_service = True

    DOWNLOAD_INTERVAL_S = 600.0

    def __init__(self):
        super().__init__()
        self.downloaded = 0
        self._playing = False

    def on_start(self):
        self.job = self.ctx.jobs.schedule(
            self, self.DOWNLOAD_INTERVAL_S, self._download_job,
            requires_network=True,
        )

    def _download_job(self):
        try:
            yield from self.http("podcast-cdn", payload_s=6.0)
            self.downloaded += 1
            self.note_data_write()
        except NetworkException as exc:
            self.note_exception(exc)

    def on_touch(self):
        if not self._playing:
            self._playing = True
            self.spawn(self._play(180.0), name="podcast.play")

    def _play(self, duration_s):
        session = self.ctx.audio.open_session(self, "podcast")
        session.start_playback()
        lock = self.ctx.power.new_wakelock(self, "podcast-play")
        lock.acquire()
        try:
            end = self.ctx.sim.now + duration_s
            while self.ctx.sim.now < end:
                yield from self.compute(0.1)
                yield self.sleep(0.9)
        finally:
            lock.release()
            session.stop_playback()
            session.close()
            self._playing = False


class SmartwatchCompanion(App):
    """A *healthy* Bluetooth companion: connection, not discovery."""

    app_name = "WatchSync"
    category = "wearable"
    foreground_service = True

    SYNC_INTERVAL_S = 60.0

    def __init__(self):
        super().__init__()
        self.synced_batches = 0
        self.notifications = 0

    def on_start(self):
        self.session = self.ctx.bluetooth.connect(self, self._on_push)
        self.ctx.alarms.set_repeating(self.uid, self.SYNC_INTERVAL_S,
                                      self._sync_alarm)

    def _on_push(self, result):
        # The watch pushes health samples/notifications through the
        # connection; every few arrivals one batch is persisted.
        self.notifications += 1
        if self.notifications % 3 == 0:
            self.note_data_write()

    def _sync_alarm(self):
        self.spawn(self._sync_once(), name="watch.sync")

    def _sync_once(self):
        lock = self.ctx.power.new_wakelock(self, "watch-sync")
        lock.acquire()
        try:
            yield from self.compute(0.2)
            self.synced_batches += 1
            self.note_data_write(5)  # health samples persisted
        finally:
            lock.release()
