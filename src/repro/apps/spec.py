"""Case specifications: app + triggering environment + paper reference.

A :class:`CaseSpec` bundles everything an experiment needs to reproduce
one Table 5 row: the app factory, the environment that triggers the bug,
and the paper's measured powers for side-by-side reporting.
"""

from dataclasses import dataclass, field

from repro.droid.phone import Phone
from repro.env.network import ServerMode


@dataclass
class CaseSpec:
    """One evaluation case (a Table 5 row or a normal-app scenario)."""

    key: str
    app_factory: object  # callable () -> App
    category: str
    resource: object  # ResourceType
    behavior: object  # BehaviorType
    description: str = ""
    #: Phone constructor overrides that create the triggering environment.
    phone_kwargs: dict = field(default_factory=dict)
    #: server name -> ServerMode for the scenario.
    servers: dict = field(default_factory=dict)
    #: Paper-reported mW for w/o lease, w/ lease, Doze*, DefDroid.
    paper_power: dict = field(default_factory=dict)

    def build_phone(self, mitigation=None, seed=1, **overrides):
        """Construct a Phone with this case's triggering environment."""
        kwargs = dict(self.phone_kwargs)
        kwargs.update(overrides)
        phone = Phone(seed=seed, mitigation=mitigation, **kwargs)
        for server, mode in self.servers.items():
            if not isinstance(mode, ServerMode):
                mode = ServerMode(mode)
            phone.env.network.set_server(server, mode)
        return phone

    def make_app(self):
        return self.app_factory()


def build_phone_for(spec, mitigation=None, seed=1, **overrides):
    """Convenience wrapper: ``spec.build_phone(...)``."""
    return spec.build_phone(mitigation=mitigation, seed=seed, **overrides)
