"""Synthetic test apps from the paper's own methodology.

- :class:`LongHoldingTestApp` -- §5.1: "acquires a wakelock and holds the
  wakelock for 30 minutes without doing anything and never releases it"
  (based on the Torch bug). Used for the Fig. 9 lease-term validation.
- :class:`IntermittentApp` -- §7.5: alternating misbehaviour slices
  (idle holding) and normal slices (busy, useful work), with random
  0-10 minute slice lengths.
"""

from repro.droid.app import App


class LongHoldingTestApp(App):
    """Acquire a wakelock, hold it idle for a fixed duration, never release."""

    app_name = "long-holding-test"
    category = "test"

    def __init__(self, hold_duration_s=1800.0):
        super().__init__()
        self.hold_duration_s = hold_duration_s
        self.lock = None

    def run(self):
        self.lock = self.ctx.power.new_wakelock(self, "test-hold")
        self.lock.acquire()
        yield self.sleep(self.hold_duration_s)
        # Never released (the bug); the app just idles on.
        while True:
            yield self.sleep(600.0)

    def holding_time(self):
        """Seconds the OS actually honoured the lock (Fig. 9's metric)."""
        record = self.lock._record
        record.settle()
        return record.active_time


def random_slices(rng, count, max_slice_s=600.0):
    """§7.5 trace: ``count`` misbehaviour + ``count`` normal slices,
    each uniform in (0, ``max_slice_s``]. Returns [(kind, seconds)]."""
    slices = []
    for __ in range(count):
        slices.append(("misbehavior", rng.random() * max_slice_s))
        slices.append(("normal", rng.random() * max_slice_s))
    return slices


class IntermittentApp(App):
    """Wakelock holder alternating idle (misbehaving) and busy slices.

    Slice boundaries are *wall-clock* (alarm-driven), like real
    intermittent workloads whose triggers are timers or environment
    changes: a deferral may slow the app down, but the next useful
    window still arrives on schedule and can exonerate the lease.
    """

    app_name = "intermittent-test"
    category = "test"

    #: Busy-slice duty cycle: well above the LHB threshold.
    BUSY_COMPUTE_S = 0.6
    BUSY_PERIOD_S = 2.0

    def __init__(self, slices):
        super().__init__()
        self.slices = list(slices)
        self.mode = self.slices[0][0] if self.slices else "normal"
        self.finished = False

    def on_start(self):
        elapsed = 0.0
        for index, (kind, duration) in enumerate(self.slices):
            elapsed += duration
            next_kind = (self.slices[index + 1][0]
                         if index + 1 < len(self.slices) else None)
            self.ctx.alarms.set(
                self.uid, elapsed,
                lambda k=next_kind: self._switch(k),
            )

    def _switch(self, kind):
        if kind is None:
            self.finished = True
        else:
            self.mode = kind

    def run(self):
        self.lock = self.ctx.power.new_wakelock(self, "intermittent")
        self.lock.acquire()
        while not self.finished:
            if self.mode == "normal":
                yield from self.compute(self.BUSY_COMPUTE_S)
                self.post_ui_update()
                yield self.sleep(self.BUSY_PERIOD_S - self.BUSY_COMPUTE_S)
            else:
                yield self.sleep(self.BUSY_PERIOD_S)
        self.lock.release()
