"""Dynamic Voltage and Frequency Scaling (paper §8 extension).

The paper's utility metrics assume energy ∝ resource-usage duration and
flag DVFS as the case where that breaks: a CPU-second at 2.15 GHz costs
far more energy than one at 300 MHz, so *time*-based utilization
misprices intense short bursts. This module adds an ondemand-style
governor to the CPU model; with it installed, the lease policy can be
made DVFS-aware (``LeasePolicy.dvfs_aware``), switching the wakelock
utilization metric from CPU time to CPU *energy* normalized by the
reference (base-frequency) power -- the "device state factors" the paper
proposes.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class FrequencyLevel:
    """One operating point: clock (GHz) and power relative to base."""

    freq_ghz: float
    power_scale: float  # multiplier on the profile's cpu_active_mw


#: A Snapdragon-821-flavoured ladder. ``power_scale`` grows super-
#: linearly with frequency (roughly f * V^2 with voltage following f).
DEFAULT_LADDER = (
    FrequencyLevel(0.30, 0.30),
    FrequencyLevel(0.65, 0.55),
    FrequencyLevel(1.10, 1.00),  # the reference point: cpu_active_mw
    FrequencyLevel(1.60, 1.55),
    FrequencyLevel(2.15, 2.40),
)


class DvfsGovernor:
    """Ondemand-style governor: load picks the operating point.

    Load is the fraction of cores busy; the governor picks the lowest
    level whose normalized capacity covers the load, plus headroom, like
    the kernel's ondemand/ schedutil governors.
    """

    HEADROOM = 1.25

    def __init__(self, ladder=DEFAULT_LADDER):
        if not ladder:
            raise ValueError("frequency ladder must not be empty")
        self.ladder = tuple(sorted(ladder, key=lambda l: l.freq_ghz))
        self.max_freq = self.ladder[-1].freq_ghz

    def level_for_load(self, load):
        """Pick the operating point for ``load`` in [0, 1]."""
        if not 0.0 <= load:
            raise ValueError("load must be non-negative")
        demand_ghz = min(1.0, load) * self.max_freq * self.HEADROOM
        for level in self.ladder:
            if level.freq_ghz >= demand_ghz:
                return level
        return self.ladder[-1]

    def power_scale_for_load(self, load):
        return self.level_for_load(load).power_scale
