"""Hardware profiles for the phones used in the paper.

Power coefficients are milliwatt draws for each component state. They are
*synthetic but plausible* -- chosen so that the relative magnitudes match
published component-power studies (GPS search is expensive, deep sleep is
nearly free, an awake-idle CPU costs tens of mW, a bright screen costs
hundreds) and so that the simulated Table 5 magnitudes land in the same
range the paper reports. Absolute fidelity to the authors' testbed is
explicitly not claimed (see DESIGN.md substitution #2).

The paper uses the Pixel XL for the main evaluation (Section 7.1), the
Nexus 5X for Monsoon system-power measurements, and the other phones for
the Section 2 characterization study.
"""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class DeviceProfile:
    """Static hardware description + power-rail coefficients (mW)."""

    name: str
    cpu_cores: int
    battery_mah: float
    battery_voltage: float = 3.85
    # CPU rail
    cpu_sleep_mw: float = 5.0  # deep sleep (suspended)
    cpu_awake_idle_mw: float = 30.0  # kept awake by a wakelock, no work
    cpu_active_mw: float = 320.0  # one core busy
    # Display rail
    screen_on_mw: float = 520.0
    screen_dim_mw: float = 180.0
    # Wi-Fi rail
    wifi_idle_mw: float = 8.0
    wifi_active_mw: float = 260.0  # transferring
    wifi_lock_mw: float = 17.0  # high-perf lock held, radio kept awake
    # GPS rail
    gps_search_mw: float = 115.0  # searching for a fix (most expensive)
    gps_locked_mw: float = 108.0  # fix held, periodic updates
    # Sensor rail (per active listener at normal rate)
    sensor_mw: float = 10.0
    # Cellular radio rail
    radio_idle_mw: float = 10.0
    radio_active_mw: float = 300.0
    # Audio playback rail
    audio_mw: float = 60.0
    # Bluetooth rail
    bluetooth_connected_mw: float = 12.0
    bluetooth_discovery_mw: float = 35.0  # inquiry scan is the hungry mode
    # Binder IPC latency (seconds) for a plain resource call (Section 7.2
    # reports ~2 ms for a non-lease acquire IPC).
    ipc_latency_s: float = 0.002
    # Relative speed factor: lower-end devices do the same work slower
    # (Section 2.3 observes ~2x differences across phone ecosystems).
    speed_factor: float = 1.0
    tags: tuple = field(default_factory=tuple)


PIXEL_XL = DeviceProfile(
    name="Google Pixel XL",
    cpu_cores=4,
    battery_mah=3450.0,
    cpu_awake_idle_mw=32.0,
    cpu_active_mw=340.0,
    screen_on_mw=540.0,
    speed_factor=1.0,
    tags=("high-end", "heavily-used"),
)

NEXUS_6 = DeviceProfile(
    name="Nexus 6",
    cpu_cores=4,
    battery_mah=3220.0,
    cpu_awake_idle_mw=36.0,
    cpu_active_mw=380.0,
    screen_on_mw=500.0,
    speed_factor=0.8,
    tags=("mid-range", "lightly-used"),
)

NEXUS_5X = DeviceProfile(
    name="Nexus 5X",
    cpu_cores=6,
    battery_mah=2700.0,
    cpu_awake_idle_mw=34.0,
    cpu_active_mw=330.0,
    screen_on_mw=430.0,
    speed_factor=0.9,
    tags=("mid-range", "monsoon-rig"),
)

NEXUS_4 = DeviceProfile(
    name="Nexus 4",
    cpu_cores=4,
    battery_mah=2100.0,
    cpu_awake_idle_mw=45.0,
    cpu_active_mw=420.0,
    screen_on_mw=520.0,
    speed_factor=0.55,
    tags=("low-end", "lightly-used"),
)

GALAXY_S4 = DeviceProfile(
    name="Samsung Galaxy S4",
    cpu_cores=4,
    battery_mah=2600.0,
    cpu_awake_idle_mw=40.0,
    cpu_active_mw=400.0,
    screen_on_mw=540.0,
    speed_factor=0.65,
    tags=("mid-range", "heavily-used"),
)

MOTO_G = DeviceProfile(
    name="Motorola Moto G",
    cpu_cores=4,
    battery_mah=2070.0,
    cpu_awake_idle_mw=42.0,
    cpu_active_mw=360.0,
    screen_on_mw=480.0,
    speed_factor=0.5,
    tags=("low-end", "heavily-used"),
)

PROFILES = {
    p.name: p
    for p in (PIXEL_XL, NEXUS_6, NEXUS_5X, NEXUS_4, GALAXY_S4, MOTO_G)
}
