"""Power accounting: rails, the energy ledger, and per-app attribution.

The monitor models the device as a set of named *rails* (``cpu_awake``,
``screen``, ``gps``, ``wifi``, per-app ``cpu_active:<uid>`` rails, ...).
Each rail has a current draw in mW and a tuple of owner UIDs the draw is
attributed to (split equally); an empty owner tuple attributes to the
system. Energy is integrated lazily: every rail change first *settles*
the elapsed interval at the old draw.

This is the substitute for the paper's Monsoon (system power) and Trepn
(per-app power) measurements -- see DESIGN.md substitution #2.
"""

from collections import defaultdict

#: UID used for draws not attributable to any app (OS, baseline hardware).
SYSTEM_UID = 1000


class EnergyLedger:
    """Accumulated energy per (uid, rail) in millijoules."""

    def __init__(self):
        self._energy_mj = defaultdict(float)  # (uid, rail) -> mJ

    def add(self, uid, rail, energy_mj):
        if energy_mj < 0:
            raise ValueError("energy must be non-negative, got {}".format(energy_mj))
        self._energy_mj[(uid, rail)] += energy_mj

    def total_mj(self):
        """Total energy consumed by the whole device, in mJ."""
        return sum(self._energy_mj.values())

    def app_total_mj(self, uid):
        """Total energy attributed to ``uid`` across all rails, in mJ."""
        return sum(e for (u, __), e in self._energy_mj.items() if u == uid)

    def app_rail_mj(self, uid, rail):
        return self._energy_mj.get((uid, rail), 0.0)

    def rail_total_mj(self, rail):
        return sum(e for (__, r), e in self._energy_mj.items() if r == rail)

    def by_app(self):
        """Mapping of uid -> total mJ."""
        totals = defaultdict(float)
        for (uid, __), energy in self._energy_mj.items():
            totals[uid] += energy
        return dict(totals)

    def snapshot(self):
        """A copy of the raw (uid, rail) -> mJ mapping."""
        return dict(self._energy_mj)


class _Rail:
    __slots__ = ("power_mw", "owners")

    def __init__(self):
        self.power_mw = 0.0
        self.owners = ()


class PowerMonitor:
    """Integrates rail power over simulated time into an energy ledger.

    The monitor never samples: it settles exactly at each state change, so
    integration is exact for the piecewise-constant power model. A
    :class:`~repro.device.battery.Battery` may be attached; settled energy
    drains it.
    """

    def __init__(self, sim, profile, battery=None):
        self.sim = sim
        self.profile = profile
        self.battery = battery
        self.ledger = EnergyLedger()
        self._rails = defaultdict(_Rail)
        self._last_settle = sim.now

    # -- rail manipulation -------------------------------------------------

    def set_rail(self, rail, power_mw, owners=()):
        """Set a rail's draw and attribution, settling the elapsed interval.

        ``owners`` is an iterable of UIDs the draw is split across; empty
        means the system. A draw of 0 keeps the rail registered but free.
        """
        if power_mw < 0:
            raise ValueError("rail power must be >= 0, got {}".format(power_mw))
        self.settle()
        state = self._rails[rail]
        state.power_mw = float(power_mw)
        state.owners = tuple(owners)

    def clear_rail(self, rail):
        """Zero a rail (same as ``set_rail(rail, 0.0)``)."""
        self.set_rail(rail, 0.0, ())

    def rail_power(self, rail):
        return self._rails[rail].power_mw if rail in self._rails else 0.0

    def rail_owners(self, rail):
        return self._rails[rail].owners if rail in self._rails else ()

    # -- integration -------------------------------------------------------

    def settle(self):
        """Integrate all rails from the last settle point to now."""
        now = self.sim.now
        elapsed = now - self._last_settle
        if elapsed <= 0:
            self._last_settle = now
            return
        drained_mj = 0.0
        for rail, state in self._rails.items():
            if state.power_mw <= 0.0:
                continue
            energy_mj = state.power_mw * elapsed  # mW == mJ/s
            drained_mj += energy_mj
            owners = state.owners or (SYSTEM_UID,)
            share = energy_mj / len(owners)
            for uid in owners:
                self.ledger.add(uid, rail, share)
        if self.battery is not None and drained_mj > 0:
            self.battery.drain_mj(drained_mj)
        self._last_settle = now

    def add_energy(self, uid, rail, energy_mj):
        """Account a discrete energy cost (e.g. one lease-stat update).

        Used for costs that are better modelled as per-operation energy
        than as a rail draw. Drains the battery like any other energy.
        """
        self.ledger.add(uid, rail, energy_mj)
        if self.battery is not None:
            self.battery.drain_mj(energy_mj)

    # -- queries -----------------------------------------------------------

    def instantaneous_power_mw(self):
        """Current total system draw in mW (sum of all rails)."""
        return sum(s.power_mw for s in self._rails.values())

    def app_power_mw(self, uid):
        """Current draw attributed to ``uid`` in mW."""
        total = 0.0
        for state in self._rails.values():
            if state.power_mw <= 0:
                continue
            owners = state.owners or (SYSTEM_UID,)
            if uid in owners:
                total += state.power_mw / len(owners)
        return total

    def app_energy_mj(self, uid):
        """Settled energy attributed to ``uid`` so far, in mJ."""
        self.settle()
        return self.ledger.app_total_mj(uid)

    def total_energy_mj(self):
        self.settle()
        return self.ledger.total_mj()
