"""Power accounting: rails, the energy ledger, and per-app attribution.

The monitor models the device as a set of named *rails* (``cpu_awake``,
``screen``, ``gps``, ``wifi``, per-app ``cpu_active:<uid>`` rails, ...).
Each rail has a current draw in mW and a tuple of owner UIDs the draw is
attributed to (split equally); an empty owner tuple attributes to the
system. Energy is integrated lazily: every rail change first *settles*
the elapsed interval at the old draw.

This is the substitute for the paper's Monsoon (system power) and Trepn
(per-app power) measurements -- see DESIGN.md substitution #2.
"""

from collections import defaultdict

#: UID used for draws not attributable to any app (OS, baseline hardware).
SYSTEM_UID = 1000


class EnergyLedger:
    """Accumulated energy per (uid, rail) in millijoules.

    Alongside the raw (uid, rail) map the ledger maintains per-uid,
    per-rail and grand running totals, so the hot queries
    (:meth:`app_total_mj`, :meth:`by_app`, :meth:`total_mj`) are O(1)
    in the number of rails instead of scanning every key.
    """

    def __init__(self):
        self._energy_mj = defaultdict(float)  # (uid, rail) -> mJ
        self._by_uid = defaultdict(float)  # uid -> mJ
        self._by_rail = defaultdict(float)  # rail -> mJ
        self._total_mj = 0.0

    def add(self, uid, rail, energy_mj):
        if energy_mj < 0:
            raise ValueError("energy must be non-negative, got {}".format(energy_mj))
        self._energy_mj[(uid, rail)] += energy_mj
        self._by_uid[uid] += energy_mj
        self._by_rail[rail] += energy_mj
        self._total_mj += energy_mj

    def total_mj(self):
        """Total energy consumed by the whole device, in mJ."""
        return self._total_mj

    def app_total_mj(self, uid):
        """Total energy attributed to ``uid`` across all rails, in mJ."""
        return self._by_uid.get(uid, 0.0)

    def app_rail_mj(self, uid, rail):
        return self._energy_mj.get((uid, rail), 0.0)

    def rail_total_mj(self, rail):
        return self._by_rail.get(rail, 0.0)

    def by_app(self):
        """Mapping of uid -> total mJ."""
        return dict(self._by_uid)

    def snapshot(self):
        """A copy of the raw (uid, rail) -> mJ mapping."""
        return dict(self._energy_mj)

    def consistency_error_mj(self):
        """Worst disagreement between the raw map and the running totals.

        The ledger maintains the per-uid, per-rail and grand totals
        incrementally; this recomputes each from the raw (uid, rail) map
        and returns the largest absolute difference in mJ. Anything
        beyond float-summation noise means the O(1) fast paths and the
        ground truth have diverged -- the energy-conservation invariant
        (:mod:`repro.faults.invariants`) checks this continuously.
        """
        raw_total = sum(self._energy_mj.values())
        by_uid = defaultdict(float)
        by_rail = defaultdict(float)
        for (uid, rail), energy in self._energy_mj.items():
            by_uid[uid] += energy
            by_rail[rail] += energy
        worst = abs(raw_total - self._total_mj)
        for uid, energy in self._by_uid.items():
            worst = max(worst, abs(energy - by_uid.get(uid, 0.0)))
        for rail, energy in self._by_rail.items():
            worst = max(worst, abs(energy - by_rail.get(rail, 0.0)))
        return worst


class _Rail:
    __slots__ = ("power_mw", "owners")

    def __init__(self):
        self.power_mw = 0.0
        self.owners = ()


class PowerMonitor:
    """Integrates rail power over simulated time into an energy ledger.

    The monitor never samples: it settles exactly at each state change, so
    integration is exact for the piecewise-constant power model. A
    :class:`~repro.device.battery.Battery` may be attached; settled energy
    drains it.
    """

    def __init__(self, sim, profile, battery=None):
        self.sim = sim
        self.profile = profile
        self.battery = battery
        self.ledger = EnergyLedger()
        self._rails = defaultdict(_Rail)
        #: Rails with a positive draw -- the only ones settle() must
        #: integrate (zero rails stay registered but cost nothing).
        self._drawing = {}
        self._last_settle = sim.now
        #: Cached instantaneous total; recomputed (exact, same summation
        #: order as the historical per-call scan) only after a rail change.
        self._instant_mw = 0.0
        self._instant_dirty = False
        #: Callables invoked as ``listener(rail, power_mw, owners)`` after
        #: every *applied* rail change (no-op re-assertions don't notify).
        #: Event-driven samplers subscribe here instead of polling.
        self.rail_listeners = []

    # -- rail manipulation -------------------------------------------------

    def set_rail(self, rail, power_mw, owners=()):
        """Set a rail's draw and attribution, settling the elapsed interval.

        ``owners`` is an iterable of UIDs the draw is split across; empty
        means the system. A draw of 0 keeps the rail registered but free.
        Re-asserting an unchanged draw and owner set is a no-op (no
        settle), which keeps chatty callers off the integration path.
        """
        if power_mw < 0:
            raise ValueError("rail power must be >= 0, got {}".format(power_mw))
        power_mw = float(power_mw)
        owners = tuple(owners)
        state = self._rails.get(rail)
        if state is not None and state.power_mw == power_mw \
                and state.owners == owners:
            return
        self.settle()
        if state is None:
            state = self._rails[rail]
        state.power_mw = power_mw
        state.owners = owners
        if power_mw > 0.0:
            self._drawing[rail] = state
        else:
            self._drawing.pop(rail, None)
        self._instant_dirty = True
        for listener in self.rail_listeners:
            listener(rail, power_mw, owners)

    def clear_rail(self, rail):
        """Zero a rail (same as ``set_rail(rail, 0.0)``)."""
        self.set_rail(rail, 0.0, ())

    def rail_power(self, rail):
        return self._rails[rail].power_mw if rail in self._rails else 0.0

    def rail_owners(self, rail):
        return self._rails[rail].owners if rail in self._rails else ()

    # -- integration -------------------------------------------------------

    def settle(self):
        """Integrate all drawing rails from the last settle point to now."""
        now = self.sim.now
        if now == self._last_settle:
            return
        elapsed = now - self._last_settle
        if elapsed <= 0 or not self._drawing:
            # Nothing drew over the interval: advance the settle point
            # without walking the rail table.
            self._last_settle = now
            return
        drained_mj = 0.0
        for rail, state in self._drawing.items():
            energy_mj = state.power_mw * elapsed  # mW == mJ/s
            drained_mj += energy_mj
            owners = state.owners or (SYSTEM_UID,)
            share = energy_mj / len(owners)
            for uid in owners:
                self.ledger.add(uid, rail, share)
        if self.battery is not None and drained_mj > 0:
            self.battery.drain_mj(drained_mj)
        self._last_settle = now

    def add_energy(self, uid, rail, energy_mj):
        """Account a discrete energy cost (e.g. one lease-stat update).

        Used for costs that are better modelled as per-operation energy
        than as a rail draw. Drains the battery like any other energy.
        """
        self.ledger.add(uid, rail, energy_mj)
        if self.battery is not None:
            self.battery.drain_mj(energy_mj)

    # -- queries -----------------------------------------------------------

    def instantaneous_power_mw(self):
        """Current total system draw in mW (sum of all drawing rails).

        O(1) between rail changes: the sum is cached and only recomputed
        after a ``set_rail`` that actually changed something. The
        recomputation walks ``_drawing`` in the same insertion order as
        the historical per-call scan, so values are bit-identical.
        """
        if self._instant_dirty:
            self._instant_mw = sum(s.power_mw for s in self._drawing.values())
            self._instant_dirty = False
        return self._instant_mw

    def app_power_mw(self, uid):
        """Current draw attributed to ``uid`` in mW."""
        total = 0.0
        for state in self._drawing.values():
            owners = state.owners or (SYSTEM_UID,)
            if uid in owners:
                total += state.power_mw / len(owners)
        return total

    def app_energy_mj(self, uid):
        """Settled energy attributed to ``uid`` so far, in mJ."""
        self.settle()
        return self.ledger.app_total_mj(uid)

    def total_energy_mj(self):
        self.settle()
        return self.ledger.total_mj()
