"""Device hardware substrate: profiles, power model, battery.

The paper measures real phones (Pixel XL, Nexus 6/4/5X, Galaxy S4,
Moto G) with Monsoon/Trepn power tooling. Here the same roles are played
by:

- :class:`~repro.device.profiles.DeviceProfile` -- per-phone hardware and
  power-rail coefficients;
- :class:`~repro.device.power.PowerMonitor` -- integrates per-component
  power over simulated time with per-app attribution (the ledger the
  Trepn/Monsoon profilers read from);
- :class:`~repro.device.battery.Battery` -- finite energy store drained by
  the power monitor.
"""

from repro.device.battery import Battery
from repro.device.power import SYSTEM_UID, EnergyLedger, PowerMonitor
from repro.device.profiles import (
    DeviceProfile,
    GALAXY_S4,
    MOTO_G,
    NEXUS_4,
    NEXUS_5X,
    NEXUS_6,
    PIXEL_XL,
    PROFILES,
)

__all__ = [
    "Battery",
    "DeviceProfile",
    "EnergyLedger",
    "PowerMonitor",
    "SYSTEM_UID",
    "PIXEL_XL",
    "NEXUS_6",
    "NEXUS_4",
    "NEXUS_5X",
    "GALAXY_S4",
    "MOTO_G",
    "PROFILES",
]
