"""A finite-capacity battery drained by the power monitor."""


class Battery:
    """Energy store with capacity derived from mAh and nominal voltage.

    1 mAh at 1 V is 3.6 J, i.e. 3600 mJ.
    """

    def __init__(self, capacity_mah, voltage=3.85, level=1.0):
        if capacity_mah <= 0:
            raise ValueError("battery capacity must be positive")
        if not 0.0 <= level <= 1.0:
            raise ValueError("initial level must be in [0, 1]")
        self.capacity_mj = capacity_mah * voltage * 3600.0
        self.remaining_mj = self.capacity_mj * level
        self.voltage = voltage

    @classmethod
    def for_profile(cls, profile, level=1.0):
        """Build a battery matching a :class:`DeviceProfile`."""
        return cls(profile.battery_mah, profile.battery_voltage, level)

    @property
    def level(self):
        """State of charge in [0, 1]."""
        return self.remaining_mj / self.capacity_mj

    @property
    def empty(self):
        return self.remaining_mj <= 0.0

    def drain_mj(self, energy_mj):
        """Remove energy; clamps at empty and returns the amount drained."""
        if energy_mj < 0:
            raise ValueError("drain must be non-negative")
        drained = min(energy_mj, self.remaining_mj)
        self.remaining_mj -= drained
        return drained

    def hours_remaining(self, power_mw):
        """Projected hours to empty at a constant draw (inf if draw is 0)."""
        if power_mw <= 0:
            return float("inf")
        return self.remaining_mj / power_mw / 3600.0

    def __repr__(self):
        return "Battery({:.0f}% of {:.0f} mJ)".format(
            self.level * 100.0, self.capacity_mj
        )
