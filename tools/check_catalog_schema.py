#!/usr/bin/env python
"""Validate scenario-catalog JSON files against the catalog schema.

    python tools/check_catalog_schema.py tests/data/scenario_catalog_example.json
    python tools/check_catalog_schema.py --instantiate my_catalog.json

Each path must parse as a ``scenario_catalog`` document at the schema
version this build reads, with every entry naming a known family, a
known resource the family composes with, known trace kinds, and numeric
parameter overrides. On success prints one line per catalog with its
fingerprint and entry count; any invalid catalog is reported and the
exit status is non-zero. ``--instantiate`` additionally materialises
every entry (parameter draws, app factories, registry registration) so
a catalog that validates here is known to run. Shared verbatim with the
scenario-smoke CI job.
"""

import argparse
import os
import sys


def _import_catalog():
    try:
        from repro.scenarios import catalog
    except ImportError:
        # Ran from a checkout without the package installed: the tool
        # lives in tools/, the package in ../src.
        sys.path.insert(0, os.path.join(
            os.path.dirname(os.path.abspath(__file__)), "..", "src"))
        from repro.scenarios import catalog
    return catalog


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="validate scenario catalog JSON files")
    parser.add_argument("paths", nargs="+", help="catalog JSON files")
    parser.add_argument("--instantiate", action="store_true",
                        help="also materialise every entry (draws "
                             "parameters and builds app factories)")
    args = parser.parse_args(argv)
    catalog_mod = _import_catalog()

    problems = 0
    for path in args.paths:
        try:
            cat = catalog_mod.ScenarioCatalog.from_file(path)
            if args.instantiate:
                cat.instantiate()
        except (OSError, ValueError) as exc:
            print("{}: {}".format(path, exc), file=sys.stderr)
            problems += 1
            continue
        families = sorted({entry["family"] for entry in cat.entries})
        print("{}: OK  name={} schema={} entries={} families={} "
              "fingerprint={}".format(
                  path, cat.name, cat.schema, len(cat.entries),
                  len(families), cat.fingerprint()[:12]))
    if problems:
        print("check_catalog_schema: {} invalid catalog(s) out of {}"
              .format(problems, len(args.paths)), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
