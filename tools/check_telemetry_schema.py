#!/usr/bin/env python
"""Lint telemetry streams against the versioned event schema.

    python tools/check_telemetry_schema.py tests/data/telemetry_example.jsonl
    python tools/check_telemetry_schema.py --require-finished results/.telemetry/<fp>/

Accepts stream *files* (one JSONL stream file each) and run
*directories* (every ``*.jsonl`` inside, plus the directory-level
checks). Exits non-zero and prints one line per problem when any
stream violates the schema: unparsable lines, unknown event types,
missing required fields, sequence gaps, or mixed run fingerprints.
``--require-finished`` additionally demands the shape of a completed
run (a ``run_started``/``run_resumed`` record and a terminal
``run_finished``). Shared verbatim with the telemetry-smoke CI job and
the lint job's committed-example check.
"""

import argparse
import os
import sys


def _import_schema():
    try:
        from repro.telemetry import schema
    except ImportError:
        # Ran from a checkout without the package installed: the tool
        # lives in tools/, the package in ../src.
        sys.path.insert(0, os.path.join(
            os.path.dirname(os.path.abspath(__file__)), "..", "src"))
        from repro.telemetry import schema
    return schema


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="validate telemetry JSONL streams against the "
                    "event schema")
    parser.add_argument("paths", nargs="+",
                        help="stream files (.jsonl) or run directories")
    parser.add_argument("--require-finished", action="store_true",
                        help="also require the shape of a completed "
                             "run (run_started/run_resumed plus a "
                             "terminal run_finished)")
    args = parser.parse_args(argv)
    schema = _import_schema()

    problems = []
    for path in args.paths:
        if os.path.isdir(path):
            problems.extend(schema.validate_stream_dir(
                path, require_finished=args.require_finished))
        elif os.path.exists(path):
            problems.extend(schema.validate_stream_file(
                path, require_finished=args.require_finished))
        else:
            problems.append("{}: no such file or directory".format(path))
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print("check_telemetry_schema: {} problem(s) in {} path(s)"
              .format(len(problems), len(args.paths)), file=sys.stderr)
        return 1
    print("check_telemetry_schema: OK ({} path(s), schema v{})".format(
        len(args.paths), schema.SCHEMA_VERSION))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
