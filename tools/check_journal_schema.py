#!/usr/bin/env python
"""Lint lease-service journals against the record schema.

    python tools/check_journal_schema.py tests/data/service_journal_example.jsonl
    python tools/check_journal_schema.py --replay results/.service/<fp>/journal.jsonl

Validates every line of each journal file: JSON shape, crc32
integrity, known op kinds, the per-op required data fields, and
gapless sequence numbers. ``--replay`` additionally replays the
records through the :class:`repro.service.state.ServiceState` reducer
(journals starting at seq 0 only) and prints the recovered state
fingerprint -- the same bytes ``repro service verify`` reports. Shared
verbatim with the service-smoke CI job and the lint job's
committed-example check.
"""

import argparse
import os
import sys


def _import_service():
    try:
        from repro.service import state, storage
    except ImportError:
        # Ran from a checkout without the package installed: the tool
        # lives in tools/, the package in ../src.
        sys.path.insert(0, os.path.join(
            os.path.dirname(os.path.abspath(__file__)), "..", "src"))
        from repro.service import state, storage
    return state, storage


def check_journal(path, state_mod, storage_mod, replay=False):
    problems = []
    records = []
    with open(path) as handle:
        for number, line in enumerate(handle, start=1):
            if not line.strip():
                problems.append("{}:{}: blank line".format(path, number))
                continue
            try:
                record = storage_mod.decode_record(line)
            except ValueError as exc:
                problems.append("{}:{}: {}".format(path, number, exc))
                continue
            if record["op"] not in state_mod.OP_KINDS:
                problems.append("{}:{}: unknown op {!r}".format(
                    path, number, record["op"]))
                continue
            missing = [field
                       for field in state_mod.OP_FIELDS[record["op"]]
                       if field not in record["data"]]
            if missing:
                problems.append("{}:{}: op {!r} missing field(s) "
                                "{}".format(path, number, record["op"],
                                            ", ".join(missing)))
            records.append(record)
    for previous, current in zip(records, records[1:]):
        if current["seq"] != previous["seq"] + 1:
            problems.append("{}: sequence gap: {} -> {}".format(
                path, previous["seq"], current["seq"]))
    if replay and not problems:
        if records and records[0]["seq"] != 0:
            problems.append("{}: cannot replay: journal starts at seq "
                            "{} (compacted?)".format(
                                path, records[0]["seq"]))
        else:
            service_state = state_mod.ServiceState()
            try:
                for record in records:
                    service_state.apply(record["op"], record["t"],
                                        record["data"])
            except state_mod.StateError as exc:
                problems.append("{}: replay failed at seq {}: "
                                "{}".format(path, record["seq"], exc))
            else:
                print("{}: {} record(s), fingerprint {}".format(
                    path, len(records), service_state.fingerprint()))
    return problems


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="validate lease-service journal files against the "
                    "record schema")
    parser.add_argument("paths", nargs="+", help="journal .jsonl files")
    parser.add_argument("--replay", action="store_true",
                        help="also replay the records through the "
                             "state reducer and print the recovered "
                             "fingerprint")
    args = parser.parse_args(argv)
    state_mod, storage_mod = _import_service()

    problems = []
    for path in args.paths:
        if os.path.exists(path):
            problems.extend(check_journal(path, state_mod, storage_mod,
                                          replay=args.replay))
        else:
            problems.append("{}: no such file".format(path))
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        return 1
    print("ok: {} journal file(s) valid".format(len(args.paths)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
